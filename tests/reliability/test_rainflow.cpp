// Rainflow counting locked against the published ASTM E1049-85 example
// (Fig. 6 / Table in Sec. 5.4.4), plus the structural invariants fatigue
// analysis relies on: monotone histories count exactly one half cycle,
// plateaus produce no spurious reversals, and the binned matrix conserves
// the total count.

#include "reliability/rainflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace ms::reliability {
namespace {

/// Total count of cycles whose range is `range` within tolerance.
double count_of_range(const std::vector<Cycle>& cycles, double range) {
  double total = 0.0;
  for (const Cycle& c : cycles) {
    if (std::abs(c.range - range) < 1e-12) total += c.count;
  }
  return total;
}

const Cycle* find_cycle(const std::vector<Cycle>& cycles, double range, double count) {
  for (const Cycle& c : cycles) {
    if (std::abs(c.range - range) < 1e-12 && std::abs(c.count - count) < 1e-12) return &c;
  }
  return nullptr;
}

TEST(Rainflow, AstmE1049PublishedExample) {
  // The standard's canonical peak/valley history.
  const std::vector<double> series = {-2, 1, -3, 5, -1, 3, -4, 4, -2};
  const std::vector<Cycle> cycles = rainflow_count(series);

  // Published counts: range 3 -> 0.5, 4 -> 1.5, 6 -> 0.5, 8 -> 1.0,
  // 9 -> 0.5; nothing else.
  EXPECT_DOUBLE_EQ(count_of_range(cycles, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(count_of_range(cycles, 4.0), 1.5);
  EXPECT_DOUBLE_EQ(count_of_range(cycles, 6.0), 0.5);
  EXPECT_DOUBLE_EQ(count_of_range(cycles, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(count_of_range(cycles, 9.0), 0.5);
  double total = 0.0;
  for (const Cycle& c : cycles) total += c.count;
  EXPECT_DOUBLE_EQ(total, 4.0);

  // Every reversal is consumed exactly once: 9 reversals = 8 ranges
  // = 2 * (1 full) + 6 * (0.5 half).
  EXPECT_EQ(cycles.size(), 7u);

  // Means of the published extractions: the full cycle is -1/3 (mean 1),
  // the range-9 half is 5/-4 (mean 0.5).
  const Cycle* full = find_cycle(cycles, 4.0, 1.0);
  ASSERT_NE(full, nullptr);
  EXPECT_DOUBLE_EQ(full->mean, 1.0);
  const Cycle* nine = find_cycle(cycles, 9.0, 0.5);
  ASSERT_NE(nine, nullptr);
  EXPECT_DOUBLE_EQ(nine->mean, 0.5);
}

TEST(Rainflow, MonotoneHistoryIsExactlyOneHalfCycle) {
  const std::vector<Cycle> rising = rainflow_count({0.0, 1.0, 3.0, 7.0, 7.5});
  ASSERT_EQ(rising.size(), 1u);
  EXPECT_DOUBLE_EQ(rising[0].range, 7.5);
  EXPECT_DOUBLE_EQ(rising[0].mean, 3.75);
  EXPECT_DOUBLE_EQ(rising[0].count, 0.5);

  const std::vector<Cycle> falling = rainflow_count({4.0, 2.0, -1.0});
  ASSERT_EQ(falling.size(), 1u);
  EXPECT_DOUBLE_EQ(falling[0].range, 5.0);
  EXPECT_DOUBLE_EQ(falling[0].count, 0.5);
}

TEST(Rainflow, ConstantAndTrivialHistoriesCountNothing) {
  EXPECT_TRUE(rainflow_count({}).empty());
  EXPECT_TRUE(rainflow_count({2.0}).empty());
  EXPECT_TRUE(rainflow_count({2.0, 2.0, 2.0}).empty());
}

TEST(Rainflow, PlateausAndInteriorPointsAreNotReversals) {
  // Saturating ramp with a plateau: still monotone, still one half cycle.
  const std::vector<Cycle> cycles = rainflow_count({0.0, 1.0, 2.0, 2.0, 2.0, 2.5});
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_DOUBLE_EQ(cycles[0].range, 2.5);

  const std::vector<double> reversals = extract_reversals({0.0, 1.0, 2.0, 1.0, 1.0, 3.0});
  EXPECT_EQ(reversals, (std::vector<double>{0.0, 2.0, 1.0, 3.0}));
}

TEST(Rainflow, RepeatedConstantAmplitudeCyclesConserveReversals) {
  // n saw teeth between 0 and 10 = 2n reversals = 2n - 1 ranges. E1049
  // counting without the rearrange-to-peak preprocessing extracts a pure
  // alternating sequence as successive half cycles (every Y contains the
  // running starting point), so the total count is (2n - 1) / 2 — the same
  // damage as n - 1/2 full cycles of that range.
  const int teeth = 5;
  std::vector<double> series;
  for (int i = 0; i < teeth; ++i) {
    series.push_back(0.0);
    series.push_back(10.0);
  }
  const std::vector<Cycle> cycles = rainflow_count(series);
  EXPECT_DOUBLE_EQ(count_of_range(cycles, 10.0), (2.0 * teeth - 1.0) / 2.0);
  for (const Cycle& c : cycles) EXPECT_DOUBLE_EQ(c.mean, 5.0);
}

TEST(Rainflow, BinnedMatrixConservesCountsAndFindsDominantClass) {
  const std::vector<Cycle> cycles = rainflow_count({-2, 1, -3, 5, -1, 3, -4, 4, -2});
  const RainflowMatrix m = bin_cycles(cycles, 4, 2);
  EXPECT_EQ(m.range_bins, 4);
  EXPECT_EQ(m.mean_bins, 2);
  EXPECT_DOUBLE_EQ(m.range_max, 9.0);
  double total = 0.0;
  for (double c : m.counts) total += c;
  EXPECT_DOUBLE_EQ(total, m.total_count);
  EXPECT_DOUBLE_EQ(total, 4.0);
  const int bin = m.dominant_bin();
  ASSERT_GE(bin, 0);
  // The three large-range extractions (8 at mean 1, 9 at mean 0.5, 8 at
  // mean 0) share range bin 3 of [0, 9] / 4 and the upper mean bin of
  // [-1, 1] / 2 — 1.5 counts, the largest class.
  EXPECT_EQ(bin / m.mean_bins, 3);
  EXPECT_EQ(bin % m.mean_bins, 1);
  EXPECT_DOUBLE_EQ(m.counts[bin], 1.5);
}

TEST(Rainflow, EmptyBinning) {
  const RainflowMatrix m = bin_cycles({}, 3, 3);
  EXPECT_DOUBLE_EQ(m.total_count, 0.0);
  EXPECT_EQ(m.dominant_bin(), -1);
}

}  // namespace
}  // namespace ms::reliability
