// Fatigue models and Miner accumulation: closed-form inversions of the
// power laws, the hand-computed two-amplitude Miner sum the damage maps rest
// on, channel extraction math (principal stress, through-plane shear), and
// the synthetic-history assessment path.

#include "reliability/damage.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "reliability/stress_history.hpp"

namespace ms::reliability {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FatigueModels, BasquinInvertsItsPowerLaw) {
  // dS/2 = s_f' (2 N_f)^b with s_f' = 1000, b = -0.5: a range of 2000
  // (amplitude 1000 = s_f') fails at N = 0.5; amplitude 100 at N = 50.
  const BasquinModel model(1000.0, -0.5);
  EXPECT_DOUBLE_EQ(model.cycles_to_failure(2000.0, 0.0), 0.5);
  EXPECT_NEAR(model.cycles_to_failure(200.0, 0.0), 50.0, 1e-9);
  // Below the endurance range: damage-free.
  const BasquinModel hard(1000.0, -0.5, /*endurance_range=*/50.0);
  EXPECT_EQ(hard.cycles_to_failure(50.0, 0.0), kInf);
  EXPECT_TRUE(std::isfinite(hard.cycles_to_failure(51.0, 0.0)));
  // Zero-range cycles never damage.
  EXPECT_EQ(model.cycles_to_failure(0.0, 0.0), kInf);
}

TEST(FatigueModels, CoffinMansonUsesStrainFromModulus) {
  // de/2 = e_f' (2 N_f)^c with e_f' = 0.4, c = -0.5, E = 1000: a stress
  // range of 800 is a strain range of 0.8 = 2 e_f' -> N = 0.5.
  const CoffinMansonModel model(0.4, -0.5, 1000.0);
  EXPECT_DOUBLE_EQ(model.cycles_to_failure(800.0, 0.0), 0.5);
  // Quartering the amplitude at c = -0.5 multiplies life by 16.
  EXPECT_NEAR(model.cycles_to_failure(200.0, 0.0), 8.0, 1e-9);
}

TEST(FatigueModels, EngelmaierExponentTracksTemperatureAndFrequency) {
  // The classic correlation: c = -0.442 - 6e-4 T + 1.74e-2 ln(1 + f).
  const EngelmaierModel cold(5600.0, 20.0, 1.0);
  const EngelmaierModel hot(5600.0, 100.0, 1.0);
  EXPECT_NEAR(cold.exponent(), -0.442 - 6e-4 * 20.0 + 1.74e-2 * std::log(2.0), 1e-12);
  EXPECT_LT(hot.exponent(), cold.exponent());
  // A more negative exponent means a flatter life curve: at equal small
  // amplitude the hot joint fails sooner.
  EXPECT_LT(hot.cycles_to_failure(100.0, 0.0), cold.cycles_to_failure(100.0, 0.0));
  // Nonsensically high cycling frequency drives c non-negative: rejected.
  EXPECT_THROW(EngelmaierModel(5600.0, 20.0, 1e12), std::invalid_argument);
}

TEST(FatigueModels, GoodmanCorrectionChargesTensileMeans) {
  // N = 0.5 (amp / 1000)^(-2). With sigma_u = 500, a tensile mean of 250
  // halves the Goodman margin, doubling the effective amplitude:
  // amp 100 -> 200, N drops 50 -> 12.5.
  const BasquinModel plain(1000.0, -0.5);
  const BasquinModel goodman(1000.0, -0.5, 0.0, MeanStressCorrection::kGoodman, 500.0);
  EXPECT_DOUBLE_EQ(goodman.cycles_to_failure(200.0, 0.0), plain.cycles_to_failure(200.0, 0.0));
  EXPECT_NEAR(goodman.cycles_to_failure(200.0, 250.0), 12.5, 1e-9);
  // A compressive mean is conservatively ignored, not credited.
  EXPECT_DOUBLE_EQ(goodman.cycles_to_failure(200.0, -300.0),
                   goodman.cycles_to_failure(200.0, 0.0));
  // Mean at/above the ultimate strength exhausts the margin: half a cycle.
  EXPECT_DOUBLE_EQ(goodman.cycles_to_failure(200.0, 500.0), 0.5);
  EXPECT_DOUBLE_EQ(goodman.cycles_to_failure(200.0, 600.0), 0.5);
  // Goodman without sigma_u is rejected.
  EXPECT_THROW(BasquinModel(1000.0, -0.5, 0.0, MeanStressCorrection::kGoodman, 0.0),
               std::invalid_argument);
}

TEST(FatigueModels, MorrowCorrectionShrinksTheStrengthCoefficient) {
  // Morrow: s_f' - s_m. amp 100 against coeff 500: N = 0.5 (100/500)^(-2)
  // = 12.5, versus 50 fully reversed.
  const BasquinModel morrow(1000.0, -0.5, 0.0, MeanStressCorrection::kMorrow);
  EXPECT_NEAR(morrow.cycles_to_failure(200.0, 0.0), 50.0, 1e-9);
  EXPECT_NEAR(morrow.cycles_to_failure(200.0, 500.0), 12.5, 1e-9);
  EXPECT_DOUBLE_EQ(morrow.cycles_to_failure(200.0, 1000.0), 0.5);
}

TEST(FatigueModels, CoffinMansonModifiedMorrowScalesDuctility) {
  // c/b = (-0.5)/(-0.25) = 2: a mean of s_f'/2 shrinks the effective
  // ductility to e_f' * 0.25 = 0.1. A strain amplitude of exactly 0.1
  // (range 200 over E = 1000) then fails at the half-cycle floor, versus
  // N = 0.5 * (0.1/0.4)^(-2) = 8 fully reversed.
  const CoffinMansonModel corrected(0.4, -0.5, 1000.0, 1000.0, -0.25);
  const CoffinMansonModel plain(0.4, -0.5, 1000.0);
  EXPECT_NEAR(corrected.cycles_to_failure(200.0, 0.0), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(corrected.cycles_to_failure(200.0, 0.0),
                   plain.cycles_to_failure(200.0, 123.0));
  EXPECT_DOUBLE_EQ(corrected.cycles_to_failure(200.0, 500.0), 0.5);
  // Mean at/above s_f': half-cycle floor.
  EXPECT_DOUBLE_EQ(corrected.cycles_to_failure(200.0, 1000.0), 0.5);
  // The correction needs a negative strength exponent.
  EXPECT_THROW(CoffinMansonModel(0.4, -0.5, 1000.0, 1000.0, 0.25), std::invalid_argument);
}

TEST(FatigueModels, EngelmaierShearModulusSoftensWithTemperature) {
  // G_eff = 5600 - 40 * (60 - 20) = 4000 MPa at a 60 C mean joint
  // temperature: larger shear strain at equal stress range, so the softened
  // joint fails sooner than the fixed-G one.
  const EngelmaierModel fixed(5600.0, 60.0, 1.0);
  const EngelmaierModel softened(5600.0, 60.0, 1.0, -40.0);
  EXPECT_DOUBLE_EQ(softened.effective_shear_modulus(), 4000.0);
  EXPECT_LT(softened.cycles_to_failure(100.0, 0.0), fixed.cycles_to_failure(100.0, 0.0));
  // The softening must not drive G_eff non-positive.
  EXPECT_THROW(EngelmaierModel(5600.0, 200.0, 1.0, -40.0), std::invalid_argument);
}

TEST(FatigueModels, MaterialFactoriesEnableMeanStressCorrections) {
  // Copper carries sigma_u, so the factory Basquin model is Goodman-corrected
  // and the Coffin-Manson model modified-Morrow-corrected: a tensile mean
  // must cost life relative to the fully-reversed cycle.
  const auto basquin = basquin_from_material(fem::copper());
  EXPECT_LT(basquin->cycles_to_failure(200.0, 100.0), basquin->cycles_to_failure(200.0, 0.0));
  const auto cm = coffin_manson_from_material(fem::copper());
  EXPECT_LT(cm->cycles_to_failure(200.0, 100.0), cm->cycles_to_failure(200.0, 0.0));
  // A material without sigma_u keeps the uncorrected laws.
  fem::Material no_su = fem::copper();
  no_su.ultimate_strength = 0.0;
  no_su.fatigue_strength = 564.0;
  const auto plain = basquin_from_material(no_su);
  EXPECT_DOUBLE_EQ(plain->cycles_to_failure(200.0, 100.0),
                   plain->cycles_to_failure(200.0, 0.0));
}

TEST(FatigueModels, MaterialFactoriesRequireData) {
  EXPECT_NO_THROW(basquin_from_material(fem::copper()));
  EXPECT_NO_THROW(coffin_manson_from_material(fem::copper()));
  EXPECT_THROW(basquin_from_material(fem::silicon()), std::invalid_argument);
  EXPECT_THROW(coffin_manson_from_material(fem::silicon()), std::invalid_argument);
}

TEST(Miner, TwoAmplitudeHandComputedSum) {
  // Model: N_f(range) = 0.5 * (range / 2000)^(-2)  (Basquin s_f' = 1000,
  // b = -0.5). History: 3 full cycles of range 200 and half a cycle of
  // range 400.
  //   N_f(200) = 0.5 * 100 = 50, N_f(400) = 0.5 * 25 = 12.5
  //   D = 3 / 50 + 0.5 / 12.5 = 0.06 + 0.04 = 0.1
  const BasquinModel model(1000.0, -0.5);
  const std::vector<Cycle> cycles = {{200.0, 0.0, 3.0}, {400.0, 50.0, 0.5}};
  EXPECT_NEAR(miner_damage(cycles, model), 0.1, 1e-12);
}

TEST(Miner, RainflowedTwoAmplitudeHistoryMatchesHandCount) {
  // A two-amplitude loading block: two small teeth (0 <-> 200) riding inside
  // one large excursion (0 -> 400 -> 0). Rainflow: the small teeth extract
  // as full cycles of range 200, the large excursion as halves of range 400.
  const std::vector<double> series = {0.0, 200.0, 0.0, 200.0, 0.0, 400.0, 0.0};
  const std::vector<Cycle> cycles = rainflow_count(series);
  double small = 0.0, large = 0.0, other = 0.0;
  for (const Cycle& c : cycles) {
    if (std::abs(c.range - 200.0) < 1e-12) {
      small += c.count;
    } else if (std::abs(c.range - 400.0) < 1e-12) {
      large += c.count;
    } else {
      other += c.count;
    }
  }
  EXPECT_DOUBLE_EQ(small, 2.0);
  EXPECT_DOUBLE_EQ(large, 1.0);
  EXPECT_DOUBLE_EQ(other, 0.0);
  // Same closed form as above: D = 2 / 50 + 1 / 12.5 = 0.12.
  const BasquinModel model(1000.0, -0.5);
  EXPECT_NEAR(miner_damage(cycles, model), 0.12, 1e-12);
}

TEST(Channels, PrincipalAndShearClosedForms) {
  // Diagonal tensor: principal = largest normal component.
  EXPECT_DOUBLE_EQ(first_principal({5.0, -2.0, 3.0, 0.0, 0.0, 0.0}), 5.0);
  // Pure in-plane shear tau: eigenvalues {tau, 0, -tau}.
  EXPECT_NEAR(first_principal({0.0, 0.0, 0.0, 0.0, 0.0, 7.0}), 7.0, 1e-12);
  // Hydrostatic plus a yz/xz shear pair.
  EXPECT_NEAR(through_plane_shear({1.0, 2.0, 3.0, 3.0, 4.0, 9.0}), 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(through_plane_shear({1.0, 1.0, 1.0, 0.0, 0.0, 9.0}), 0.0);
  // Uniaxial tension: von Mises = principal = the axial stress.
  const fem::Stress6 uniaxial = {11.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(channel_value(StressChannel::kVonMises, uniaxial), 11.0, 1e-12);
  EXPECT_NEAR(channel_value(StressChannel::kFirstPrincipal, uniaxial), 11.0, 1e-12);
}

/// Synthetic single-sample-per-block history: uniaxial sxx states make all
/// three channels controllable (vm = |sxx|, principal = max(sxx, 0) for
/// tension, shear = 0).
StressHistory uniaxial_history(const std::vector<std::vector<double>>& sxx_per_step) {
  StressHistory history(static_cast<int>(sxx_per_step.front().size()), 1);
  double t = 0.0;
  for (const std::vector<double>& step : sxx_per_step) {
    std::vector<fem::Stress6> field;
    for (double s : step) field.push_back({s, 0.0, 0.0, 0.0, 0.0, 0.0});
    history.record(t, field, /*samples_per_block=*/1);
    t += 1.0;
  }
  return history;
}

TEST(Assessment, SyntheticHistoryFindsTheCycledBlock) {
  // Block 0 cycles 0 <-> 800 three times; block 1 rises monotonically to a
  // *higher* peak but never cycles — fatigue must blame block 0.
  const StressHistory history = uniaxial_history({
      {0.0, 0.0},
      {800.0, 300.0},
      {0.0, 600.0},
      {800.0, 900.0},
      {0.0, 950.0},
      {800.0, 1000.0},
      {0.0, 1000.0},
  });
  FatigueModelSet models;
  models.set(StressChannel::kVonMises, std::make_unique<BasquinModel>(1000.0, -0.5));
  const ReliabilityReport report = assess_history(history, models, /*trace_duration=*/7.0);

  ASSERT_EQ(report.channels.size(), 1u);
  const ChannelAssessment& a = report.channels.front();
  EXPECT_EQ(a.channel, StressChannel::kVonMises);
  EXPECT_GT(a.damage[0], a.damage[1]);
  EXPECT_EQ(report.min_life_block, 0);
  EXPECT_EQ(report.min_life_channel, StressChannel::kVonMises);
  EXPECT_TRUE(std::isfinite(report.min_life_cycles));
  EXPECT_NEAR(report.min_life_seconds, report.min_life_cycles * 7.0, 1e-9);
  // Peak map reproduces the envelope per block.
  const std::vector<double> peaks = history.peak_map(StressChannel::kVonMises);
  EXPECT_DOUBLE_EQ(peaks[0], 800.0);
  EXPECT_DOUBLE_EQ(peaks[1], 1000.0);
}

TEST(Assessment, StandardModelSetWiresAllThreeChannels) {
  const FatigueModelSet models =
      standard_model_set(fem::MaterialTable::standard(), 5600.0, 60.0, 100.0);
  ASSERT_NE(models.at(StressChannel::kVonMises), nullptr);
  ASSERT_NE(models.at(StressChannel::kFirstPrincipal), nullptr);
  ASSERT_NE(models.at(StressChannel::kBumpShear), nullptr);
  EXPECT_EQ(models.at(StressChannel::kVonMises)->name(), "basquin");
  EXPECT_EQ(models.at(StressChannel::kFirstPrincipal)->name(), "coffin-manson");
  EXPECT_EQ(models.at(StressChannel::kBumpShear)->name(), "engelmaier");
}

}  // namespace
}  // namespace ms::reliability
