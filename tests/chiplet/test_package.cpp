#include "chiplet/package_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::chiplet {
namespace {

PackageGeometry small_geometry() {
  PackageGeometry g;
  g.substrate_x = g.substrate_y = 600.0;
  g.substrate_z = 60.0;
  g.interposer_x = g.interposer_y = 400.0;
  g.interposer_z = 50.0;
  g.die_x = g.die_y = 200.0;
  g.die_z = 40.0;
  return g;
}

CoarseMeshSpec small_spec() { return {10, 10, 2, 2, 2}; }

const PackageModel& package() {
  static const PackageModel model(small_geometry(), small_spec(), -250.0);
  return model;
}

TEST(PackageGeometry, DerivedQuantities) {
  const PackageGeometry g = small_geometry();
  EXPECT_DOUBLE_EQ(g.total_z(), 150.0);
  EXPECT_DOUBLE_EQ(g.interposer_z0(), 60.0);
  EXPECT_DOUBLE_EQ(g.interposer_z1(), 110.0);
  EXPECT_DOUBLE_EQ(g.interposer_x0(), 100.0);
  EXPECT_DOUBLE_EQ(g.die_x0(), 200.0);
  EXPECT_NO_THROW(g.validate());
}

TEST(PackageGeometry, ValidationCatchesNonNesting) {
  PackageGeometry g = small_geometry();
  g.die_x = 900.0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(PackageMaterials, FillerIsSoftButValid) {
  const fem::MaterialTable table = package_materials();
  const fem::Material& filler = table.at(kFillerMaterial);
  EXPECT_LT(filler.youngs_modulus, 1e-3 * fem::silicon().youngs_modulus);
  EXPECT_NO_THROW(filler.validate());
}

TEST(PackageModel, SolvesAndClampsBottom) {
  const PackageModel& m = package();
  EXPECT_TRUE(m.stats().converged);
  // Bottom face has zero displacement.
  const auto u0 = m.displacement_at({300.0, 300.0, 0.0});
  EXPECT_NEAR(u0[0], 0.0, 1e-10);
  EXPECT_NEAR(u0[2], 0.0, 1e-10);
}

TEST(PackageModel, CoolingShrinksTheStack) {
  // Under DT = -250 the organic substrate contracts more than silicon; the
  // top of the stack must move downward (negative z displacement).
  const PackageModel& m = package();
  const auto u_top = m.displacement_at({300.0, 300.0, 149.0});
  EXPECT_LT(u_top[2], 0.0);
  EXPECT_GT(std::fabs(u_top[2]), 1e-3);  // micrometres of motion
}

TEST(PackageModel, WarpageGradientAcrossInterposer) {
  // Displacement varies across the interposer plane: the essence of the
  // location-dependent background the sub-modeling scenario probes.
  const PackageModel& m = package();
  const double z = 0.5 * (m.geometry().interposer_z0() + m.geometry().interposer_z1());
  const auto u_centre = m.displacement_at({300.0, 300.0, z});
  const auto u_corner = m.displacement_at({110.0, 110.0, z});
  const double diff = std::fabs(u_centre[2] - u_corner[2]) +
                      std::fabs(u_centre[0] - u_corner[0]);
  EXPECT_GT(diff, 1e-3);
}

TEST(PackageModel, BackgroundVariesSharplyAtDieCorner) {
  // What makes loc3/loc5 hard for linear superposition (paper Table 2) is
  // the sharp *variation* of the background near the die corner versus the
  // smooth field under the die-shadow centre. Compare local stress variation
  // over the same 40 um span at both places.
  const PackageModel& m = package();
  const PackageGeometry& g = m.geometry();
  const double z = 0.5 * (g.interposer_z0() + g.interposer_z1());
  const auto variation = [&](double x, double y) {
    const double a = fem::von_mises(m.stress_at({x - 20.0, y - 20.0, z}));
    const double b = fem::von_mises(m.stress_at({x + 20.0, y + 20.0, z}));
    return std::fabs(a - b);
  };
  const double centre_var = variation(300.0, 300.0);
  const double corner_var = variation(g.die_x0() + g.die_x, g.die_y0() + g.die_y);
  EXPECT_GT(corner_var, 2.0 * centre_var);
}

TEST(PackageModel, DisplacementProbeMatchesNodalValues) {
  const PackageModel& m = package();
  // Probing exactly at a node reproduces the nodal solution.
  const auto& mesh = m.mesh();
  const la::idx_t node = mesh.node_id(3, 4, 2);
  const mesh::Point3 p = mesh.node_pos(node);
  const auto u = m.displacement_at(p);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(u[c], m.displacement()[3 * node + c], 1e-9);
  }
}

}  // namespace
}  // namespace ms::chiplet
