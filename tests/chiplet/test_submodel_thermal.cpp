// Scenario-2 thermal coupling: power map -> package conduction -> per-block
// ΔT in the sub-model window -> ROM sub-modeling path. Pins the degenerate
// uniform case to the scalar-ΔT simulate_submodel path (mirror of the PR-1
// array regression), validates against the brute-force reference FEM via the
// shared harness, and sanity-checks the hotspot physics and input guards.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chiplet/package_thermal.hpp"
#include "util/validation_harness.hpp"

namespace ms::chiplet {
namespace {

core::SimulationConfig test_config() {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 4;
  config.local.samples_per_block = 12;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  return config;
}

/// Degenerate plan-uniform package: every layer spans the full plan and the
/// sub-model window covers the whole interposer, so a uniform power map
/// produces a 1-D temperature profile and an exactly uniform per-block ΔT.
PackageGeometry slab_geometry(double plan, double interposer_z) {
  PackageGeometry g;
  g.substrate_x = g.substrate_y = plan;
  g.substrate_z = 60.0;
  g.interposer_x = g.interposer_y = plan;
  g.interposer_z = interposer_z;
  g.die_x = g.die_y = plan;
  g.die_z = 40.0;
  return g;
}

/// Small package hosting a padded window with room around it.
PackageGeometry small_package() {
  PackageGeometry g;
  g.substrate_x = g.substrate_y = 200.0;
  g.substrate_z = 60.0;
  g.interposer_x = g.interposer_y = 120.0;
  g.interposer_z = 50.0;
  g.die_x = g.die_y = 60.0;
  g.die_z = 40.0;
  return g;
}

TEST(SubmodelThermal, UniformPowerMatchesScalarDeltaTPath) {
  core::SimulationConfig config = test_config();
  const int blocks = 3;
  const double plan = blocks * config.geometry.pitch;
  const PackageGeometry geometry = slab_geometry(plan, config.geometry.height);
  const PackageModel package(geometry, {6, 6, 2, 2, 2}, config.thermal_load);
  const SubmodelPlacement placement{{0.0, 0.0, geometry.interposer_z0()}, blocks, blocks, "slab"};

  const thermal::PowerMap power(1, 1, plan, plan, 50.0);
  core::MoreStressSimulator sim(config);
  const core::ThermalSubmodelResult coupled =
      sim.simulate_submodel_thermal(blocks, blocks, /*dummy_rings=*/0, package, placement, power);

  // Plan-uniform stack + uniform power: the window ΔT must be uniform ...
  ASSERT_EQ(coupled.load.values().size(), static_cast<std::size_t>(blocks * blocks));
  for (double dt : coupled.load.values()) {
    EXPECT_NEAR(dt, coupled.load.values().front(), 1e-9);
  }
  EXPECT_GT(coupled.load.values().front(), 0.0);  // die sits above the sink

  // ... and the stress field must match the scalar-ΔT sub-model path run at
  // exactly that ΔT, to solver precision.
  core::SimulationConfig scalar_config = test_config();
  scalar_config.thermal_load = coupled.load.values().front();
  core::MoreStressSimulator scalar_sim(scalar_config);
  const auto displacement = [&](const mesh::Point3& p) {
    return package.displacement_at({p.x + placement.origin.x, p.y + placement.origin.y,
                                    p.z + placement.origin.z});
  };
  const core::ArrayResult scalar =
      scalar_sim.simulate_submodel(blocks, blocks, /*dummy_rings=*/0, displacement);

  ASSERT_EQ(scalar.von_mises.size(), coupled.von_mises.size());
  double peak = 0.0;
  for (double v : scalar.von_mises) peak = std::max(peak, std::abs(v));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < scalar.von_mises.size(); ++i) {
    EXPECT_NEAR(coupled.von_mises[i], scalar.von_mises[i], 1e-8 * peak) << "sample " << i;
  }
}

TEST(SubmodelThermal, MatchesReferenceFemWithinBand) {
  core::SimulationConfig config = test_config();
  const PackageGeometry geometry = small_package();
  const PackageModel package(geometry, {10, 10, 2, 2, 2}, config.thermal_load);
  const int tsv = 2, rings = 1;
  const int padded = tsv + 2 * rings;
  const auto locations =
      standard_locations(geometry, config.geometry.pitch, padded, padded);

  thermal::PowerMap power(8, 8, geometry.substrate_x, geometry.substrate_y, 0.0);
  power.add_rect(geometry.die_x0(), geometry.die_y0(), geometry.die_x0() + geometry.die_x,
                 geometry.die_y0() + geometry.die_y, 25.0);
  power.add_gaussian_hotspot(0.5 * geometry.substrate_x, 0.5 * geometry.substrate_y, 20.0,
                             250.0);

  const testutil::ValidationReport report = testutil::validate_submodel_thermal(
      config, package, locations[0], tsv, tsv, rings, power);
  ASSERT_FALSE(report.rom_von_mises.empty());
  // Same error source as scenario 1 (boundary interpolation) at (4,4,4)
  // nodes; the paper's sub-model errors sit in the same few-percent band.
  EXPECT_LT(report.von_mises_error, 0.08);
  ASSERT_TRUE(report.has_displacement);
  EXPECT_LT(report.displacement_error, 0.10);
}

TEST(SubmodelThermal, HotspotOverWindowHeatsNearestBlocks) {
  core::SimulationConfig config = test_config();
  config.local.samples_per_block = 6;
  const PackageGeometry geometry = small_package();
  const PackageModel package(geometry, {10, 10, 2, 2, 2}, config.thermal_load);
  const int padded = 3;
  const auto locations =
      standard_locations(geometry, config.geometry.pitch, padded, padded);
  const SubmodelPlacement& loc = locations[0];  // die-centre window

  // Hotspot directly above the window centre.
  const double cx = loc.origin.x + 1.5 * config.geometry.pitch;
  const double cy = loc.origin.y + 1.5 * config.geometry.pitch;
  thermal::PowerMap power(16, 16, geometry.substrate_x, geometry.substrate_y, 2.0);
  power.add_gaussian_hotspot(cx, cy, config.geometry.pitch, 400.0);

  core::MoreStressSimulator sim(config);
  const core::ThermalSubmodelResult result =
      sim.simulate_submodel_thermal(padded, padded, 0, package, loc, power);

  const auto& dt = result.load.values();
  ASSERT_EQ(dt.size(), 9u);
  const double centre = dt[1 * 3 + 1];
  for (std::size_t i = 0; i < dt.size(); ++i) {
    if (i != 4) EXPECT_GT(centre, dt[i]) << "block " << i;
  }
  EXPECT_GT(result.load.min(), 0.0);
}

TEST(SubmodelThermal, DummyRingBlocksConductLikeBulkSilicon) {
  // The package thermal model must assign bulk-Si conductivity to dummy
  // blocks and the anisotropic TSV tensor to active ones.
  core::SimulationConfig config = test_config();
  const PackageGeometry geometry = small_package();
  const int padded = 4;
  const auto locations =
      standard_locations(geometry, config.geometry.pitch, padded, padded);
  PackageThermalSpec spec;
  const PackageThermalModel model = build_package_thermal_model(
      geometry, config.geometry, locations[0], mesh::padded_tsv_mask(padded, padded, 1),
      config.materials, spec);

  const double k_si = config.materials.at(mesh::MaterialId::Silicon).conductivity;
  const thermal::BlockConductivity tsv_k = thermal::block_conductivity(
      config.geometry, config.materials, true, thermal::ConductivityModel::kTsvAware);
  // Probe one element in the dummy ring and one in the TSV core.
  const double z_mid = 0.5 * (geometry.interposer_z0() + geometry.interposer_z1());
  const auto k_at = [&](double x, double y) {
    const auto loc = model.mesh.locate({x, y, z_mid});
    return std::array<double, 2>{model.conductivity.in_plane[loc.elem],
                                 model.conductivity.through_plane[loc.elem]};
  };
  const double p = config.geometry.pitch;
  const auto ring = k_at(locations[0].origin.x + 0.5 * p, locations[0].origin.y + 0.5 * p);
  EXPECT_DOUBLE_EQ(ring[0], k_si);
  EXPECT_DOUBLE_EQ(ring[1], k_si);
  const auto core = k_at(locations[0].origin.x + 1.5 * p, locations[0].origin.y + 1.5 * p);
  EXPECT_DOUBLE_EQ(core[0], tsv_k.in_plane);
  EXPECT_DOUBLE_EQ(core[1], tsv_k.through_plane);
}

TEST(SubmodelThermal, RejectsBadInputs) {
  core::SimulationConfig config = test_config();
  const PackageGeometry geometry = small_package();
  const PackageModel package(geometry, {6, 6, 2, 2, 2}, config.thermal_load);
  const auto locations = standard_locations(geometry, config.geometry.pitch, 3, 3);
  core::MoreStressSimulator sim(config);

  const thermal::PowerMap good(4, 4, geometry.substrate_x, geometry.substrate_y, 10.0);
  // Placement covers 3x3 but tsv+rings asks for 4x4.
  EXPECT_THROW((void)sim.simulate_submodel_thermal(2, 2, 1, package, locations[0], good),
               std::invalid_argument);
  // Power map footprint must match the package plan.
  const thermal::PowerMap small(4, 4, 50.0, 50.0, 10.0);
  EXPECT_THROW((void)sim.simulate_submodel_thermal(3, 3, 0, package, locations[0], small),
               std::invalid_argument);
  // Window outside the interposer.
  const SubmodelPlacement outside{{-100.0, 0.0, geometry.interposer_z0()}, 3, 3, "bad"};
  EXPECT_THROW((void)sim.simulate_submodel_thermal(3, 3, 0, package, outside, good),
               std::invalid_argument);
}

TEST(SubmodelTransient, ConstantTraceRelaxesToSteadySubmodelPath) {
  core::SimulationConfig config = test_config();
  config.local.samples_per_block = 6;
  // The organic substrate's through-stack time constant is ~0.1 s; 40
  // backward-Euler steps of 0.1 s damp every transient mode far below the
  // comparison tolerance.
  config.coupling.transient.time_step = 0.1;
  const PackageGeometry geometry = small_package();
  const PackageModel package(geometry, {10, 10, 2, 2, 2}, config.thermal_load);
  const int padded = 3;
  const auto locations = standard_locations(geometry, config.geometry.pitch, padded, padded);
  const SubmodelPlacement& loc = locations[0];

  thermal::PowerMap power(8, 8, geometry.substrate_x, geometry.substrate_y, 1.0);
  power.add_gaussian_hotspot(loc.origin.x + 1.5 * config.geometry.pitch,
                             loc.origin.y + 1.5 * config.geometry.pitch,
                             config.geometry.pitch, 150.0);

  core::MoreStressSimulator sim(config);
  const core::ThermalSubmodelResult steady =
      sim.simulate_submodel_thermal(padded, padded, 0, package, loc, power);
  const core::ThermalTransientSubmodelResult transient = sim.simulate_submodel_thermal_transient(
      padded, padded, 0, package, loc, thermal::PowerTrace::constant(power, 4.0));

  // The windowed per-step reduction relaxes to the steady windowed ΔT ...
  const auto& steady_dt = steady.load.values();
  const auto& envelope_dt = transient.envelope_load.values();
  ASSERT_EQ(envelope_dt.size(), steady_dt.size());
  double dt_scale = 0.0;
  for (double dt : steady_dt) dt_scale = std::max(dt_scale, std::abs(dt));
  ASSERT_GT(dt_scale, 0.0);
  for (std::size_t b = 0; b < steady_dt.size(); ++b) {
    EXPECT_NEAR(envelope_dt[b], steady_dt[b], 1e-6 * dt_scale) << "block " << b;
  }

  // ... and so does the envelope-driven stress field.
  double peak = 0.0;
  for (double v : steady.von_mises) peak = std::max(peak, v);
  ASSERT_GT(peak, 0.0);
  ASSERT_EQ(transient.von_mises.size(), steady.von_mises.size());
  for (std::size_t i = 0; i < steady.von_mises.size(); ++i) {
    EXPECT_NEAR(transient.von_mises[i], steady.von_mises[i], 1e-6 * peak) << "sample " << i;
  }
}

TEST(SubmodelFatigue, PulsedPackageTraceBatchesOnePanelAndReportsDamage) {
  core::SimulationConfig config = test_config();
  config.local.samples_per_block = 6;
  config.coupling.transient.time_step = 0.02;
  const PackageGeometry geometry = small_package();
  const PackageModel package(geometry, {10, 10, 2, 2, 2}, config.thermal_load);
  const int tsv = 2, rings = 1;
  const int padded = tsv + 2 * rings;
  const auto locations = standard_locations(geometry, config.geometry.pitch, padded, padded);
  const SubmodelPlacement& loc = locations[0];

  const thermal::PowerMap idle(8, 8, geometry.substrate_x, geometry.substrate_y, 0.5);
  thermal::PowerMap active = idle;
  active.add_gaussian_hotspot(loc.origin.x + 0.5 * padded * config.geometry.pitch,
                              loc.origin.y + 0.5 * padded * config.geometry.pitch,
                              config.geometry.pitch, 100.0);
  const thermal::PowerTrace trace =
      thermal::PowerTrace::square_wave(idle, active, /*period=*/0.4, /*duty=*/0.5, /*cycles=*/2);

  core::MoreStressSimulator sim(config);
  const core::FatigueResult result =
      sim.simulate_submodel_fatigue(tsv, tsv, rings, package, loc, trace);

  // The history covers the inner TSV region only, one channel record per
  // recorded step, batched as one panel on a single factorization.
  EXPECT_EQ(result.history.blocks_x(), tsv);
  EXPECT_EQ(result.history.blocks_y(), tsv);
  EXPECT_EQ(result.history.num_steps(), result.transient.num_records());
  EXPECT_EQ(result.solve_stats.num_factorizations, 1);
  EXPECT_EQ(result.solve_stats.num_rhs,
            static_cast<la::idx_t>(result.history_steps.size()) + 1);

  // Pulsed heat at reflow-free reference: real cycles, real damage.
  ASSERT_EQ(result.report.channels.size(), 3u);
  for (const auto& a : result.report.channels) {
    ASSERT_EQ(a.damage.size(), static_cast<std::size_t>(tsv * tsv));
    EXPECT_GT(a.half_cycle_counts[0], 0.0) << a.model_name;
  }
  EXPECT_TRUE(std::isfinite(result.report.min_life_cycles));
  EXPECT_GT(result.report.min_life_cycles, 0.0);
}

}  // namespace
}  // namespace ms::chiplet
