#include "chiplet/submodel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "chiplet/displacement_field.hpp"
#include "mesh/grading.hpp"

namespace ms::chiplet {
namespace {

PackageGeometry small_geometry() {
  PackageGeometry g;
  g.substrate_x = g.substrate_y = 600.0;
  g.substrate_z = 60.0;
  g.interposer_x = g.interposer_y = 400.0;
  g.interposer_z = 50.0;
  g.die_x = g.die_y = 200.0;
  g.die_z = 40.0;
  return g;
}

const PackageModel& package() {
  static const PackageModel model(small_geometry(), {10, 10, 2, 2, 2}, -250.0);
  return model;
}

TEST(StandardLocations, FiveDistinctInBoundsPlacements) {
  const PackageGeometry g = small_geometry();
  const auto locs = standard_locations(g, 15.0, 5, 5);
  ASSERT_EQ(locs.size(), 5u);
  for (const auto& loc : locs) {
    EXPECT_EQ(loc.blocks_x, 5);
    // Fully inside the interposer footprint.
    EXPECT_GE(loc.origin.x, g.interposer_x0() - 1e-9);
    EXPECT_LE(loc.origin.x + 5 * 15.0, g.interposer_x0() + g.interposer_x + 1e-9);
    EXPECT_GE(loc.origin.y, g.interposer_y0() - 1e-9);
    EXPECT_DOUBLE_EQ(loc.origin.z, g.interposer_z0());
  }
  // Labels are loc1..loc5 and origins differ pairwise.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(locs[i].label, "loc" + std::to_string(i + 1));
    for (std::size_t j = i + 1; j < 5; ++j) {
      const bool same = locs[i].origin.x == locs[j].origin.x &&
                        locs[i].origin.y == locs[j].origin.y;
      EXPECT_FALSE(same) << i << " vs " << j;
    }
  }
}

TEST(StandardLocations, Loc1CentredOnDie) {
  const PackageGeometry g = small_geometry();
  const auto locs = standard_locations(g, 15.0, 4, 4);
  const double cx = locs[0].origin.x + 2 * 15.0;
  EXPECT_NEAR(cx, g.die_x0() + 0.5 * g.die_x, 1e-9);
}

TEST(StandardLocations, Loc5AtInterposerCorner) {
  const PackageGeometry g = small_geometry();
  const auto locs = standard_locations(g, 15.0, 4, 4);
  EXPECT_NEAR(locs[4].origin.x + 4 * 15.0, g.interposer_x0() + g.interposer_x, 1e-9);
  EXPECT_NEAR(locs[4].origin.y + 4 * 15.0, g.interposer_y0() + g.interposer_y, 1e-9);
}

TEST(StandardLocations, RejectsOversizedSubmodel) {
  EXPECT_THROW(standard_locations(small_geometry(), 15.0, 100, 100), std::invalid_argument);
}

TEST(FineSubmodelBc, PrescribesCoarseDisplacementOnBoundary) {
  const PackageGeometry g = small_geometry();
  const auto locs = standard_locations(g, 15.0, 3, 3);
  const mesh::TsvGeometry tsv{15.0, 5.0, 0.5, 50.0};
  const mesh::HexMesh fine = mesh::build_array_mesh(tsv, {6, 3}, 3, 3);

  const fem::DirichletBc bc = fine_submodel_bc(fine, package(), locs[0]);
  EXPECT_EQ(bc.size(), 3 * fine.boundary_nodes().size());

  // Spot check: values equal the package displacement at the shifted point.
  const auto bnodes = fine.boundary_nodes();
  for (std::size_t i = 0; i < bnodes.size(); i += 53) {
    const mesh::Point3 local = fine.node_pos(bnodes[i]);
    const auto expected = package().displacement_at(
        {local.x + locs[0].origin.x, local.y + locs[0].origin.y, local.z + locs[0].origin.z});
    for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(bc.values[3 * i + c], expected[c]);
  }
}

TEST(DisplacementField, WrapsAndShifts) {
  const PackageModel& m = package();
  const DisplacementField field(m.mesh(), m.displacement());
  const mesh::Point3 p{300.0, 300.0, 100.0};
  const auto direct = m.displacement_at(p);
  const auto wrapped = field(p);
  for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(wrapped[c], direct[c]);

  const DisplacementField shifted = field.shifted({100.0, 50.0, 0.0});
  const auto via_shift = shifted({200.0, 250.0, 100.0});
  for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(via_shift[c], direct[c]);
}

}  // namespace
}  // namespace ms::chiplet
