#include "baseline/superposition.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::baseline {
namespace {

mesh::TsvGeometry geometry() { return {15.0, 5.0, 0.5, 50.0}; }
mesh::BlockMeshSpec spec() { return {6, 3}; }

const fem::MaterialTable& table() {
  static const fem::MaterialTable t = fem::MaterialTable::standard();
  return t;
}

const SuperpositionModel& model() {
  static const SuperpositionModel m = [] {
    SuperpositionModel::BuildOptions options;
    options.window_blocks = 3;
    options.samples_per_block = 8;
    options.fem.method = "direct";
    return SuperpositionModel::build(geometry(), spec(), table(), options);
  }();
  return m;
}

TEST(Superposition, BuildRecordsCostAndShape) {
  EXPECT_EQ(model().window_blocks(), 3);
  EXPECT_EQ(model().samples_per_block(), 8);
  EXPECT_GT(model().build_seconds(), 0.0);
  EXPECT_GT(model().memory_bytes(), 0u);
}

TEST(Superposition, EstimateShape) {
  const auto field = model().estimate_array(4, 3);
  EXPECT_EQ(field.size(), static_cast<std::size_t>(4 * 8) * (3 * 8));
}

TEST(Superposition, SingleViaReproducesOneShotCentre) {
  // Estimating a 1x1 "array" = background + centre delta = the single-TSV
  // field at the window centre, by construction.
  const auto field = model().estimate_array(1, 1);
  EXPECT_EQ(field.size(), 64u);
  double peak = 0.0;
  for (const auto& s : field) peak = std::max(peak, fem::von_mises(s));
  EXPECT_GT(peak, 100.0);  // hundreds of MPa near the via
}

TEST(Superposition, FieldHasArrayPeriodicityFarFromEdges) {
  // Away from array edges every block sees the same neighbor pattern, so the
  // estimate repeats block-to-block (exact by construction for the method).
  const int s = 8;
  const auto field = model().estimate_array(5, 5);
  const std::size_t width = 5 * s;
  // Compare block (2,2) with block (2,1) sample-for-sample: with a 3-block
  // window both see identical neighborhoods.
  for (int my = 0; my < s; ++my) {
    for (int mx = 0; mx < s; ++mx) {
      const std::size_t a = (static_cast<std::size_t>(2 * s + my)) * width + 2 * s + mx;
      const std::size_t b = (static_cast<std::size_t>(1 * s + my)) * width + 2 * s + mx;
      EXPECT_NEAR(fem::von_mises(field[a]), fem::von_mises(field[b]), 1e-9);
    }
  }
}

TEST(Superposition, MaskSuppressesViaContributions) {
  const std::vector<std::uint8_t> none(9, 0);
  const auto field = model().estimate(3, 3, none, nullptr);
  // Pure background: nearly hydrostatic silicon -> small von Mises.
  double peak_bg = 0.0;
  for (const auto& s : field) peak_bg = std::max(peak_bg, fem::von_mises(s));
  const auto with_vias = model().estimate_array(3, 3);
  double peak_vias = 0.0;
  for (const auto& s : with_vias) peak_vias = std::max(peak_vias, fem::von_mises(s));
  EXPECT_LT(peak_bg, 0.3 * peak_vias);
}

TEST(Superposition, ExternalBackgroundIsUsed) {
  const fem::Stress6 uniform{100.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const std::function<fem::Stress6(const mesh::Point3&)> bg =
      [&](const mesh::Point3&) { return uniform; };
  const std::vector<std::uint8_t> none(4, 0);
  const auto field = model().estimate(2, 2, none, &bg);
  for (const auto& s : field) {
    EXPECT_DOUBLE_EQ(s[0], 100.0);
    EXPECT_DOUBLE_EQ(s[1], 0.0);
  }
}

TEST(Superposition, RejectsBadArguments) {
  SuperpositionModel::BuildOptions options;
  options.window_blocks = 4;  // must be odd
  EXPECT_THROW(SuperpositionModel::build(geometry(), spec(), table(), options),
               std::invalid_argument);
  EXPECT_THROW(model().estimate(2, 2, {1, 0, 0}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace ms::baseline
