#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace ms::obs {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override { EventLog::close(); }
  void TearDown() override {
    EventLog::close();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string open_temp(const char* name) {
    path_ = ::testing::TempDir() + name;
    EventLog::open(path_);
    return path_;
  }

  std::vector<util::JsonValue> read_lines() const {
    std::ifstream in(path_);
    std::vector<util::JsonValue> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(util::parse_json(line));
    }
    return lines;
  }

  std::string path_;
};

TEST_F(EventLogTest, DisabledEmitIsANoOpAndSkipsTheCallback) {
  ASSERT_FALSE(EventLog::enabled());
  bool ran = false;
  EventLog::emit("never", [&ran](util::JsonObject&) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(EventLog::lines_written(), 0);
}

TEST_F(EventLogTest, EmitsOneValidJsonObjectPerLine) {
  open_temp("ms_event_log_basic.jsonl");
  EventLog::emit("scenario.started",
                 [](util::JsonObject& e) { e.set("scenario", "s1").set("index", 0); });
  EventLog::emit("scenario.completed", [](util::JsonObject& e) {
    e.set("scenario", "s1").set("status", "ok").set("seconds", 0.25);
  });
  EXPECT_EQ(EventLog::lines_written(), 2);
  EventLog::close();

  const std::vector<util::JsonValue> lines = read_lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("event")->string, "scenario.started");
  EXPECT_EQ(lines[0].find("scenario")->string, "s1");
  EXPECT_EQ(lines[1].find("event")->string, "scenario.completed");
  EXPECT_EQ(lines[1].find("status")->string, "ok");
  // Common envelope on every line: trace-epoch timestamp + sequence number.
  EXPECT_EQ(lines[0].find("seq")->number, 0.0);
  EXPECT_EQ(lines[1].find("seq")->number, 1.0);
  EXPECT_GE(lines[1].find("ts_us")->number, lines[0].find("ts_us")->number);
}

TEST_F(EventLogTest, ConcurrentEmittersNeverInterleaveAndSeqIsGapFree) {
  open_temp("ms_event_log_mt.jsonl");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        EventLog::emit("tick", [t, i](util::JsonObject& e) {
          e.set("thread", t).set("iteration", i);
        });
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(EventLog::lines_written(), kThreads * kPerThread);
  EventLog::close();

  const std::vector<util::JsonValue> lines = read_lines();  // parse_json throws on garble
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("seq")->number, static_cast<double>(i));  // file order == seq
  }
}

TEST_F(EventLogTest, CloseStopsAcceptingEvents) {
  open_temp("ms_event_log_close.jsonl");
  EventLog::emit("one", nullptr);
  EventLog::close();
  EXPECT_FALSE(EventLog::enabled());
  EventLog::emit("two", nullptr);
  EXPECT_EQ(read_lines().size(), 1u);
}

TEST_F(EventLogTest, OpenOnUnwritablePathThrows) {
  EXPECT_THROW(EventLog::open("/nonexistent-dir/events.jsonl"), std::runtime_error);
  EXPECT_FALSE(EventLog::enabled());
}

}  // namespace
}  // namespace ms::obs
