#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ms::obs {
namespace {

TEST(Counter, AccumulatesAndResets) {
  Counter c;
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, KeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(0.25);
  h.record(1.0);
  h.record(0.5);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 1.75);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.mean(), 1.75 / 3.0, 1e-15);
}

TEST(Histogram, BinOfIsMonotoneAndClamped) {
  EXPECT_EQ(Histogram::bin_of(0.0), 0);
  EXPECT_EQ(Histogram::bin_of(1e-9), 0);
  EXPECT_EQ(Histogram::bin_of(1e9), Histogram::kNumBins - 1);
  int last = 0;
  for (double v = 1e-6; v < 2e3; v *= 2.0) {
    const int bin = Histogram::bin_of(v);
    EXPECT_GE(bin, last);
    EXPECT_LT(bin, Histogram::kNumBins);
    last = bin;
  }
  Histogram h;
  h.record(3e-6);
  EXPECT_EQ(h.bin_count(Histogram::bin_of(3e-6)), 1);
}

TEST(Histogram, BinEdgesBracketTheirValues) {
  for (double v = 2e-6; v < 1e3; v *= 3.7) {
    const int bin = Histogram::bin_of(v);
    EXPECT_LE(Histogram::bin_lower(bin), v);
    if (bin < Histogram::kNumBins - 1) EXPECT_LT(v, Histogram::bin_upper(bin));
  }
  EXPECT_DOUBLE_EQ(Histogram::bin_lower(0), 0.0);  // bin 0 is open below
}

TEST(Histogram, PercentilesAreEmptySafeAndClampedToExactExtremes) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty
  h.record(0.125);
  // One sample: every quantile is that sample, pinned by the min/max clamp
  // (the raw bin interpolation alone could only say "somewhere in the bin").
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.125);
}

TEST(Histogram, PercentilesOrderAndBracketAWideDistribution) {
  Histogram h;
  // 100 samples spanning many bins: 1 ms .. 100 ms.
  for (int i = 1; i <= 100; ++i) h.record(1e-3 * i);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, h.min());
  // Bin resolution is 2x, so the estimate lands within the true value's bin:
  // the true medians/tails are 50/95/99 ms.
  EXPECT_GE(p50, 0.032);
  EXPECT_LE(p50, 0.064);
  EXPECT_GE(p95, 0.064);
  EXPECT_GE(p99, 0.064);
}

TEST(MetricRegistry, SnapshotCarriesHistogramPercentiles) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("stage_seconds");
  for (int i = 1; i <= 8; ++i) h.record(1e-3 * i);
  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kHistogram);
  EXPECT_GT(samples[0].p50, 0.0);
  EXPECT_LE(samples[0].p50, samples[0].p95);
  EXPECT_LE(samples[0].p95, samples[0].p99);
  EXPECT_LE(samples[0].p99, samples[0].max);
}

TEST(MetricRegistry, FindHistogramLooksUpWithoutCreating) {
  MetricRegistry registry;
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
  registry.counter("a_counter").add(1);
  EXPECT_EQ(registry.find_histogram("a_counter"), nullptr);  // wrong kind
  Histogram& h = registry.histogram("present");
  EXPECT_EQ(registry.find_histogram("present"), &h);
}

TEST(MetricRegistry, HandlesAreStableAndFindOrCreate) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.count");
  a.add(2);
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.counter_value("x.count"), 2);
  EXPECT_EQ(reg.counter_value("missing"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing"), 0.0);
  EXPECT_DOUBLE_EQ(reg.histogram_sum("missing"), 0.0);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("name"), std::invalid_argument);
}

TEST(MetricRegistry, SnapshotIsNameSortedRegardlessOfCreationOrder) {
  MetricRegistry forward;
  forward.counter("a").add(1);
  forward.gauge("b").set(2.0);
  forward.histogram("c").record(3.0);

  MetricRegistry reverse;
  reverse.histogram("c").record(3.0);
  reverse.gauge("b").set(2.0);
  reverse.counter("a").add(1);

  const auto s1 = forward.snapshot();
  const auto s2 = reverse.snapshot();
  ASSERT_EQ(s1.size(), 3u);
  ASSERT_EQ(s2.size(), 3u);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].name, s2[i].name);
    EXPECT_EQ(s1[i].kind, s2[i].kind);
    EXPECT_EQ(s1[i].count, s2[i].count);
    EXPECT_DOUBLE_EQ(s1[i].value, s2[i].value);
  }
  EXPECT_TRUE(std::is_sorted(s1.begin(), s1.end(), [](const auto& x, const auto& y) {
    return x.name < y.name;
  }));
}

TEST(MetricRegistry, IdenticalRunsProduceIdenticalSnapshots) {
  const auto run = [](MetricRegistry& reg) {
    for (int i = 0; i < 10; ++i) {
      reg.counter("solves").add(1);
      reg.histogram("seconds").record(0.125 * (i + 1));
      reg.gauge("dofs").set(100.0 * (i + 1));
    }
  };
  MetricRegistry r1, r2;
  run(r1);
  run(r2);
  const auto s1 = r1.snapshot();
  const auto s2 = r2.snapshot();
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].name, s2[i].name);
    EXPECT_EQ(s1[i].count, s2[i].count);
    EXPECT_DOUBLE_EQ(s1[i].value, s2[i].value);
    EXPECT_DOUBLE_EQ(s1[i].min, s2[i].min);
    EXPECT_DOUBLE_EQ(s1[i].max, s2[i].max);
  }
}

TEST(MetricRegistry, ConcurrentUpdatesLoseNothing) {
  MetricRegistry reg;
  Counter& hits = reg.counter("hits");
  Histogram& durations = reg.histogram("durations");
  constexpr int kPerThread = 2000;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (int i = 0; i < 4 * kPerThread; ++i) {
    hits.add(1);
    durations.record(1e-3);
  }
#else
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.add(1);
        durations.record(1e-3);
      }
    });
  }
  for (auto& t : threads) t.join();
#endif
  EXPECT_EQ(hits.value(), 4 * kPerThread);
  EXPECT_EQ(durations.count(), 4 * kPerThread);
  EXPECT_NEAR(durations.sum(), 4 * kPerThread * 1e-3, 1e-9);
}

TEST(MetricRegistry, ResetZeroesButKeepsNames) {
  MetricRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2.0);
  reg.histogram("h").record(1.0);
  reg.reset();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(reg.counter_value("c"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.0);
  EXPECT_DOUBLE_EQ(reg.histogram_sum("h"), 0.0);
}

TEST(ScopedDuration, RecordsScopeWallTime) {
  MetricRegistry reg;
  {
    ScopedDuration timer(reg.histogram("scope_seconds"));
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  EXPECT_EQ(reg.histogram("scope_seconds").count(), 1);
  EXPECT_GE(reg.histogram_sum("scope_seconds"), 0.0);
}

}  // namespace
}  // namespace ms::obs
