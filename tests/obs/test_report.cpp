#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "thermal/power_map.hpp"
#include "util/json.hpp"

namespace ms::obs {
namespace {

TEST(RunReport, ValueCountAndDeltaSemantics) {
  MetricRegistry reg;
  reg.counter("solves").add(2);
  reg.gauge("dofs").set(120.0);
  reg.histogram("seconds").record(0.5);
  const RunReport before = RunReport::capture(reg);

  reg.counter("solves").add(3);
  reg.histogram("seconds").record(0.25);
  const RunReport after = RunReport::capture(reg);

  EXPECT_DOUBLE_EQ(before.value("solves"), 2.0);
  EXPECT_EQ(after.count("solves"), 5);
  EXPECT_DOUBLE_EQ(after.delta(before, "solves"), 3.0);
  EXPECT_EQ(after.count_delta(before, "seconds"), 1);
  EXPECT_DOUBLE_EQ(after.delta(before, "seconds"), 0.25);
  EXPECT_DOUBLE_EQ(after.value("dofs"), 120.0);
  EXPECT_DOUBLE_EQ(after.value("absent"), 0.0);
  EXPECT_EQ(after.count_delta(before, "absent"), 0);
}

TEST(RunReport, RenderJsonParsesBackNameSorted) {
  MetricRegistry reg;
  reg.histogram("z.seconds").record(0.5);
  reg.counter("a.count").add(7);
  reg.gauge("m.gauge").set(-1.5);
  const RunReport report = RunReport::capture(reg);

  const util::JsonValue doc = util::parse_json(report.render_json());
  ASSERT_TRUE(doc.is_object());
  const util::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  ASSERT_EQ(metrics->object.size(), 3u);
  // std::map iteration == name order; JSON objects are emitted in that order.
  auto it = metrics->object.begin();
  EXPECT_EQ(it->first, "a.count");
  EXPECT_DOUBLE_EQ(it->second.find("count")->number, 7.0);
  ++it;
  EXPECT_EQ(it->first, "m.gauge");
  EXPECT_DOUBLE_EQ(it->second.find("value")->number, -1.5);
  ++it;
  EXPECT_EQ(it->first, "z.seconds");
  EXPECT_DOUBLE_EQ(it->second.find("sum")->number, 0.5);
  EXPECT_DOUBLE_EQ(it->second.find("count")->number, 1.0);
  // Non-empty histograms render their interpolated percentiles; a single
  // sample pins all three to the exact recorded value.
  EXPECT_DOUBLE_EQ(it->second.find("p50")->number, 0.5);
  EXPECT_DOUBLE_EQ(it->second.find("p95")->number, 0.5);
  EXPECT_DOUBLE_EQ(it->second.find("p99")->number, 0.5);
}

TEST(RunReport, IdenticalRegistriesRenderIdenticalJson) {
  const auto fill = [](MetricRegistry& reg) {
    reg.counter("runs").add(4);
    reg.histogram("h").record(0.125);
    reg.histogram("h").record(0.5);
    reg.gauge("g").set(3.75);
  };
  MetricRegistry r1, r2;
  fill(r1);
  fill(r2);
  EXPECT_EQ(RunReport::capture(r1).render_json(), RunReport::capture(r2).render_json());
}

/// The regression lock of the observability PR: solve paths publish the
/// exact values their legacy stats structs carry, so a RunReport captured
/// after an array-thermal run must agree bit-for-bit with the structs.
TEST(RunReport, MatchesLegacyStatsOnArrayThermalRun) {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 8;
  core::MoreStressSimulator sim(config);
  (void)sim.prepare_local_stage(false);

  const int blocks = 3;
  const thermal::PowerMap power =
      thermal::PowerMap::per_block(blocks, blocks, config.geometry.pitch, 40.0);

  // Zero the global registry so each histogram sees exactly one record and
  // its sum equals the recorded value with no accumulation rounding.
  MetricRegistry::global().reset();
  const core::ThermalArrayResult result = sim.simulate_array_thermal(blocks, blocks, power);
  const RunReport report = RunReport::capture();

  // Global (ROM) stage: core.run.* mirrors core::RunStats.
  EXPECT_EQ(report.count("core.run.count"), 1);
  EXPECT_DOUBLE_EQ(report.value("core.run.assemble_seconds"), result.stats.assemble_seconds);
  EXPECT_DOUBLE_EQ(report.value("core.run.solve_seconds"), result.stats.solve_seconds);
  EXPECT_DOUBLE_EQ(report.value("core.run.reconstruct_seconds"),
                   result.stats.reconstruct_seconds);
  EXPECT_DOUBLE_EQ(report.value("core.run.factor_seconds"), result.stats.factor_seconds);
  EXPECT_DOUBLE_EQ(report.value("core.run.local_stage_seconds"),
                   result.stats.local_stage_seconds);
  EXPECT_DOUBLE_EQ(report.value("core.run.global_dofs"),
                   static_cast<double>(result.stats.global_dofs));
  EXPECT_DOUBLE_EQ(report.value("core.run.iterations"),
                   static_cast<double>(result.stats.iterations));
  EXPECT_DOUBLE_EQ(report.value("core.run.converged"), result.stats.converged ? 1.0 : 0.0);
  EXPECT_DOUBLE_EQ(report.value("core.run.memory_bytes"),
                   static_cast<double>(result.stats.memory_bytes));
  EXPECT_DOUBLE_EQ(report.value("core.run.factor_nnz"),
                   static_cast<double>(result.stats.factor_nnz));
  EXPECT_DOUBLE_EQ(report.value("core.run.fill_ratio"), result.stats.fill_ratio);

  // Thermal stage: thermal.steady.* mirrors thermal::ThermalSolveStats.
  EXPECT_EQ(report.count("thermal.steady.solves"), 1);
  EXPECT_DOUBLE_EQ(report.value("thermal.steady.assemble_seconds"),
                   result.thermal_stats.assemble_seconds);
  EXPECT_DOUBLE_EQ(report.value("thermal.steady.solve_seconds"),
                   result.thermal_stats.solve_seconds);
  EXPECT_DOUBLE_EQ(report.value("thermal.steady.factor_seconds"),
                   result.thermal_stats.factor_seconds);
  EXPECT_DOUBLE_EQ(report.value("thermal.steady.num_dofs"),
                   static_cast<double>(result.thermal_stats.num_dofs));
  EXPECT_DOUBLE_EQ(report.value("thermal.steady.converged"),
                   result.thermal_stats.converged ? 1.0 : 0.0);
  EXPECT_DOUBLE_EQ(report.value("thermal.steady.iterations"),
                   static_cast<double>(result.thermal_stats.iterations));

  // The global solver published its own rom.global.* mirror of the same run.
  EXPECT_EQ(report.count("rom.global.solves"), 1);
  EXPECT_DOUBLE_EQ(report.value("rom.global.num_dofs"),
                   static_cast<double>(result.stats.global_dofs));
}

}  // namespace
}  // namespace ms::obs
