#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace ms::obs {
namespace {

/// The recorder is process-wide (one capture bit) but per-thread (rings);
/// every test starts disabled with this thread's ring empty.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::set_enabled(false);
    FlightRecorder::clear();
  }
  void TearDown() override {
    FlightRecorder::set_enabled(false);
    FlightRecorder::clear();
    set_tracing_enabled(false);
    clear_trace();
  }
};

TEST_F(FlightRecorderTest, DisabledNotesRecordNothing) {
  FlightRecorder::note_span("ignored", 0.0, 1.0);
  FlightRecorder::note_log("ignored line");
  EXPECT_TRUE(FlightRecorder::snapshot().empty());
}

TEST_F(FlightRecorderTest, CapturesSpansAndLogLinesInOrder) {
  FlightRecorder::set_enabled(true);
  FlightRecorder::note_span("rom.global.solve", 100.0, 350.0);
  FlightRecorder::note_log("[WARN] diagonal shift applied");
  FlightRecorder::note_span("sweep.query", 90.0, 400.0);
  const std::vector<FlightRecord> records = FlightRecorder::snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(records[0].is_log);
  EXPECT_EQ(records[0].text, "rom.global.solve");
  EXPECT_DOUBLE_EQ(records[0].ts_us, 100.0);
  EXPECT_DOUBLE_EQ(records[0].dur_us, 250.0);
  EXPECT_TRUE(records[1].is_log);
  EXPECT_EQ(records[1].text, "[WARN] diagonal shift applied");
  EXPECT_DOUBLE_EQ(records[1].dur_us, 0.0);
  EXPECT_EQ(records[2].text, "sweep.query");
}

TEST_F(FlightRecorderTest, RingWrapKeepsTheNewestEntriesOldestFirst) {
  FlightRecorder::set_enabled(true);
  constexpr int kTotal = static_cast<int>(FlightRecorder::kCapacity) + 17;
  for (int i = 0; i < kTotal; ++i) {
    FlightRecorder::note_span(("span" + std::to_string(i)).c_str(),
                              static_cast<double>(i), static_cast<double>(i) + 1.0);
  }
  const std::vector<FlightRecord> records = FlightRecorder::snapshot();
  ASSERT_EQ(records.size(), FlightRecorder::kCapacity);
  // The survivors are the last kCapacity notes, oldest first.
  for (std::size_t k = 0; k < records.size(); ++k) {
    const int i = kTotal - static_cast<int>(FlightRecorder::kCapacity) + static_cast<int>(k);
    EXPECT_EQ(records[k].text, "span" + std::to_string(i));
    EXPECT_DOUBLE_EQ(records[k].ts_us, static_cast<double>(i));
  }
}

TEST_F(FlightRecorderTest, ClearBoundsTheWindowToOneQuery) {
  FlightRecorder::set_enabled(true);
  FlightRecorder::note_log("previous query");
  FlightRecorder::clear();
  FlightRecorder::note_log("this query");
  const std::vector<FlightRecord> records = FlightRecorder::snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].text, "this query");
}

TEST_F(FlightRecorderTest, LongLogLinesAreTruncatedNotOverflowed) {
  FlightRecorder::set_enabled(true);
  const std::string line(4 * FlightRecorder::kMaxText, 'x');
  FlightRecorder::note_log(line.c_str());
  const std::vector<FlightRecord> records = FlightRecorder::snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].text.size(), FlightRecorder::kMaxText - 1);
  EXPECT_EQ(records[0].text, line.substr(0, FlightRecorder::kMaxText - 1));
}

TEST_F(FlightRecorderTest, RingsAreThreadLocal) {
  FlightRecorder::set_enabled(true);
  FlightRecorder::note_log("main thread");
  std::vector<FlightRecord> worker_records;
  std::thread worker([&worker_records] {
    FlightRecorder::note_log("worker thread");
    worker_records = FlightRecorder::snapshot();
  });
  worker.join();
  ASSERT_EQ(worker_records.size(), 1u);
  EXPECT_EQ(worker_records[0].text, "worker thread");
  const std::vector<FlightRecord> main_records = FlightRecorder::snapshot();
  ASSERT_EQ(main_records.size(), 1u);
  EXPECT_EQ(main_records[0].text, "main thread");
}

TEST_F(FlightRecorderTest, ScopedSpansFeedTheRingWithoutFullTracing) {
  // The recorder captures spans even when the unbounded trace buffer is off:
  // the capture mask keeps the two bits independent.
  ASSERT_FALSE(tracing_enabled());
  FlightRecorder::set_enabled(true);
  { MS_TRACE_SCOPE("bounded.only"); }
  EXPECT_EQ(span_count(), 0u);  // nothing in the trace buffer...
  const std::vector<FlightRecord> records = FlightRecorder::snapshot();
  ASSERT_EQ(records.size(), 1u);  // ...but the ring saw the span
  EXPECT_FALSE(records[0].is_log);
  EXPECT_EQ(records[0].text, "bounded.only");
  EXPECT_GE(records[0].dur_us, 0.0);
}

TEST_F(FlightRecorderTest, LogMacrosFeedTheRing) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::Off);  // keep test stderr clean...
  FlightRecorder::set_enabled(true);
  MS_LOG_ERROR("factor failed: pivot %d", 42);
  util::set_log_level(saved);
  const std::vector<FlightRecord> records = FlightRecorder::snapshot();
  // ...which also documents that suppressed-level messages never reach the
  // ring; re-check with an enabled level.
  EXPECT_TRUE(records.empty());

  util::set_log_level(util::LogLevel::Error);
  MS_LOG_ERROR("factor failed: pivot %d", 42);
  util::set_log_level(saved);
  const std::vector<FlightRecord> after = FlightRecorder::snapshot();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].is_log);
  EXPECT_NE(after[0].text.find("factor failed: pivot 42"), std::string::npos);
  EXPECT_NE(after[0].text.find("ERROR"), std::string::npos);
}

TEST_F(FlightRecorderTest, FormatRendersSpansAndLogsDistinctly) {
  std::vector<FlightRecord> records(2);
  records[0].ts_us = 12345.0;
  records[0].dur_us = 3200.0;
  records[0].text = "rom.global.solve";
  records[1].ts_us = 12400.0;
  records[1].is_log = true;
  records[1].text = "[WARN] shifted";
  const std::vector<std::string> lines = format_flight_records(records);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "+12.345ms span rom.global.solve (3.200ms)");
  EXPECT_EQ(lines[1], "+12.400ms log [WARN] shifted");
}

}  // namespace
}  // namespace ms::obs
