#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/json.hpp"

namespace ms::obs {
namespace {

/// Tracing state is process-wide; every test starts from a clean, disabled
/// tracer and leaves it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(false);
    clear_trace();
  }
  void TearDown() override {
    set_tracing_enabled(false);
    clear_trace();
  }
};

TEST_F(TraceTest, DisabledScopesRecordNothing) {
  {
    MS_TRACE_SCOPE("never");
    MS_TRACE_SCOPE("recorded");
  }
  EXPECT_EQ(span_count(), 0u);
  EXPECT_EQ(open_span_count(), 0u);
}

TEST_F(TraceTest, NestedScopesBalanceAndCarryDepth) {
  set_tracing_enabled(true);
  {
    MS_TRACE_SCOPE("outer");
    {
      MS_TRACE_SCOPE("middle");
      { MS_TRACE_SCOPE("inner"); }
    }
  }
  EXPECT_EQ(open_span_count(), 0u);
  const std::vector<SpanEvent> events = collect_events();
  ASSERT_EQ(events.size(), 3u);
  // Spans complete innermost-first on one thread.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  // Children nest inside their parent's time window.
  EXPECT_GE(events[0].begin_us, events[2].begin_us);
  EXPECT_LE(events[0].end_us, events[2].end_us);
  for (const SpanEvent& e : events) EXPECT_GE(e.end_us, e.begin_us);
}

TEST_F(TraceTest, ScopedSpanEndIsIdempotent) {
  set_tracing_enabled(true);
  {
    ScopedSpan span("phase");
    span.end();
    span.end();  // second end and the destructor must both be no-ops
  }
  EXPECT_EQ(span_count(), 1u);
  EXPECT_EQ(open_span_count(), 0u);
}

TEST_F(TraceTest, OpenMpRegionsBalanceAcrossThreads) {
  set_tracing_enabled(true);
  constexpr int kIterations = 64;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (int i = 0; i < kIterations; ++i) {
    MS_TRACE_SCOPE("panel");
    { MS_TRACE_SCOPE("panel/inner"); }
  }
  EXPECT_EQ(open_span_count(), 0u);
  const std::vector<SpanEvent> events = collect_events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(2 * kIterations));
  std::set<std::int32_t> tids;
  for (const SpanEvent& e : events) tids.insert(e.tid);
#ifdef _OPENMP
  if (omp_get_max_threads() > 1) EXPECT_GT(tids.size(), 1u);
#endif
  // Every thread's spans balanced: equal inner and outer counts.
  std::size_t inner = 0;
  for (const SpanEvent& e : events) {
    if (std::string(e.name) == "panel/inner") ++inner;
  }
  EXPECT_EQ(inner, static_cast<std::size_t>(kIterations));
}

TEST_F(TraceTest, ChromeTraceJsonParsesBack) {
  set_tracing_enabled(true);
  {
    MS_TRACE_SCOPE("solve");
    { MS_TRACE_SCOPE("factor"); }
  }
  set_tracing_enabled(false);

  const util::JsonValue doc = util::parse_json(render_chrome_trace());
  ASSERT_TRUE(doc.is_object());
  const util::JsonValue* unit = doc.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const util::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  std::set<std::string> names;
  for (const util::JsonValue& event : events->array) {
    ASSERT_TRUE(event.is_object());
    names.insert(event.find("name")->string);
    EXPECT_EQ(event.find("ph")->string, "X");
    EXPECT_GE(event.find("dur")->number, 0.0);
    EXPECT_GE(event.find("ts")->number, 0.0);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
  }
  EXPECT_EQ(names, (std::set<std::string>{"solve", "factor"}));
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  set_tracing_enabled(true);
  { MS_TRACE_SCOPE("span"); }
  set_tracing_enabled(false);

  const std::string path = ::testing::TempDir() + "ms_trace_test.json";
  write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const util::JsonValue doc = util::parse_json(buffer.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("traceEvents")->array.size(), 1u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, SpanIdsAreUniqueAndParentEdgesFollowNesting) {
  set_tracing_enabled(true);
  {
    MS_TRACE_SCOPE("outer");
    { MS_TRACE_SCOPE("inner"); }
    { MS_TRACE_SCOPE("inner2"); }
  }
  const std::vector<SpanEvent> events = collect_events();
  ASSERT_EQ(events.size(), 3u);
  std::set<SpanId> ids;
  for (const SpanEvent& e : events) ids.insert(e.id);
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids.count(0), 0u);  // 0 is the "no span" sentinel
  const SpanEvent& outer = events[2];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, SpanId{0});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(events[i].parent, outer.id);
    EXPECT_FALSE(events[i].remote_parent);
  }
}

TEST_F(TraceTest, CurrentSpanIdTracksInnermostOpenSpan) {
  EXPECT_EQ(current_span_id(), SpanId{0});  // capture off
  set_tracing_enabled(true);
  EXPECT_EQ(current_span_id(), SpanId{0});  // no open span
  {
    MS_TRACE_SCOPE("outer");
    const SpanId outer_id = current_span_id();
    EXPECT_NE(outer_id, SpanId{0});
    {
      MS_TRACE_SCOPE("inner");
      EXPECT_NE(current_span_id(), outer_id);
    }
    EXPECT_EQ(current_span_id(), outer_id);
  }
  EXPECT_EQ(current_span_id(), SpanId{0});
}

TEST_F(TraceTest, RemoteParentCrossesThreadsDeterministically) {
  // The producer/consumer handoff pattern under an 8-thread pool: the
  // producer captures its span id, every worker opens its root span with
  // that id as remote parent. Parent edges must be exact on every worker
  // regardless of scheduling.
  set_tracing_enabled(true);
  constexpr int kWorkers = 8;
  SpanId producer_id = 0;
  {
    ScopedSpan producer("producer.batch");
    producer_id = current_span_id();
    ASSERT_NE(producer_id, SpanId{0});
    std::vector<std::thread> pool;
    pool.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.emplace_back([producer_id] {
        ScopedSpan root("worker.query", producer_id);
        { MS_TRACE_SCOPE("worker.inner"); }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  set_tracing_enabled(false);

  const std::vector<SpanEvent> events = collect_events();
  int roots = 0;
  std::set<SpanId> root_ids;
  for (const SpanEvent& e : events) {
    if (std::string(e.name) == "worker.query") {
      ++roots;
      root_ids.insert(e.id);
      EXPECT_EQ(e.parent, producer_id);
      EXPECT_TRUE(e.remote_parent);
      EXPECT_EQ(e.depth, 0);
    } else if (std::string(e.name) == "worker.inner") {
      EXPECT_FALSE(e.remote_parent);  // same-thread edge under the root
    }
  }
  EXPECT_EQ(roots, kWorkers);
  // Every inner span's parent is one of the worker roots.
  for (const SpanEvent& e : events) {
    if (std::string(e.name) == "worker.inner") {
      EXPECT_EQ(root_ids.count(e.parent), 1u);
    }
  }
}

TEST_F(TraceTest, ChromeExportEmitsFlowEventsForRemoteEdges) {
  set_tracing_enabled(true);
  SpanId producer_id = 0;
  {
    ScopedSpan producer("enqueue");
    producer_id = current_span_id();
    std::thread worker([producer_id] { ScopedSpan root("query", producer_id); });
    worker.join();
  }
  set_tracing_enabled(false);

  const util::JsonValue doc = util::parse_json(render_chrome_trace());
  const util::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int flow_starts = 0;
  int flow_finishes = 0;
  double flow_id = -1.0;
  double query_span_id = -1.0;
  for (const util::JsonValue& event : events->array) {
    const std::string ph = event.find("ph")->string;
    if (ph == "X") {
      const util::JsonValue* args = event.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("span_id"), nullptr);
      ASSERT_NE(args->find("parent_id"), nullptr);
      if (event.find("name")->string == "query") {
        query_span_id = args->find("span_id")->number;
        EXPECT_EQ(args->find("parent_id")->number,
                  static_cast<double>(producer_id));
      }
    } else if (ph == "s") {
      ++flow_starts;
      flow_id = event.find("id")->number;
      EXPECT_EQ(event.find("cat")->string, "ms.flow");
    } else if (ph == "f") {
      ++flow_finishes;
      EXPECT_EQ(event.find("bp")->string, "e");
      EXPECT_EQ(event.find("id")->number, flow_id);
    }
  }
  EXPECT_EQ(flow_starts, 1);
  EXPECT_EQ(flow_finishes, 1);
  // The flow arrow is keyed by the child (query) span id — unique per edge.
  EXPECT_EQ(flow_id, query_span_id);
}

TEST_F(TraceTest, ExportPreservesEventsAndCollectIsRepeatable) {
  set_tracing_enabled(true);
  { MS_TRACE_SCOPE("kept"); }
  const std::size_t before = span_count();
  (void)render_chrome_trace();
  EXPECT_EQ(span_count(), before);  // export snapshots, does not drain
  EXPECT_EQ(collect_events().size(), before);
  EXPECT_TRUE(tracing_enabled());  // export restores the enabled state
  clear_trace();
  EXPECT_EQ(span_count(), 0u);
}

}  // namespace
}  // namespace ms::obs
