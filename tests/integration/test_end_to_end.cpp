// Integration tests exercising the full MORE-Stress pipeline against the
// fine-mesh FEM on the identical discrete model. These encode the paper's
// central claims at test scale:
//   * the ROM is exact when the true solution lies in the interpolation
//     space (patch test);
//   * the single error source is boundary interpolation, which converges as
//     (nx, ny, nz) grow (Table 3 behaviour);
//   * errors stay small and the reaction-corrected element load (DESIGN.md
//     note on Eq. 19) reproduces the homogeneous-domain solution.

#include <gtest/gtest.h>

#include "baseline/superposition.hpp"
#include "core/report.hpp"
#include "core/simulator.hpp"
#include "fem/solver.hpp"
#include "fem/stress.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/local_stage.hpp"

namespace ms {
namespace {

core::SimulationConfig test_config(int nodes) {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = nodes;
  config.local.samples_per_block = 12;
  config.global.rel_tol = 1e-11;
  return config;
}

TEST(EndToEnd, PatchTestLinearFieldIsExact) {
  // Zero thermal load, HOMOGENEOUS (pure silicon) blocks, linear prescribed
  // boundary displacement: the exact solution u = A x is an equilibrium
  // field, lies in the trilinear FEM space AND in the Lagrange interpolation
  // space, so the ROM must reproduce it to solver precision. (TSV blocks are
  // heterogeneous — a linear field is not an equilibrium state there.)
  core::SimulationConfig config = test_config(3);
  config.thermal_load = 0.0;
  config.global.rel_tol = 1e-13;

  const rom::RomModel dummy = rom::run_local_stage(config.geometry, config.mesh_spec,
                                                   config.materials, rom::BlockKind::Dummy,
                                                   config.local);

  const auto linear = [](const mesh::Point3& p) {
    return std::array<double, 3>{1e-3 * p.x + 2e-4 * p.y, -5e-4 * p.y + 1e-4 * p.z,
                                 3e-4 * p.z - 2e-4 * p.x};
  };
  const rom::BlockGrid grid(2, 2, 3, 3, 3, config.geometry.pitch, config.geometry.height);
  rom::GlobalProblem problem = rom::assemble_global(grid, dummy, nullptr, {}, 0.0);
  const fem::DirichletBc bc = rom::submodel_boundary(grid, linear);
  const la::Vec solution = rom::solve_global(problem, bc, config.global);
  const auto displacement = rom::reconstruct_plane_displacement(
      grid, dummy, nullptr, {}, solution, 0.0, rom::BlockRange::all(grid));
  const int s = config.local.samples_per_block;
  const double z = 0.5 * config.geometry.height;
  std::size_t idx = 0;
  for (int gy = 0; gy < 2 * s; ++gy) {
    const double y = (gy + 0.5) / s * config.geometry.pitch;
    for (int gx = 0; gx < 2 * s; ++gx, ++idx) {
      const double x = (gx + 0.5) / s * config.geometry.pitch;
      const auto expected = linear({x, y, z});
      for (int c = 0; c < 3; ++c) {
        EXPECT_NEAR(displacement[idx][c], expected[c], 1e-9) << "c=" << c;
      }
    }
  }
}

TEST(EndToEnd, HomogeneousDomainThermalLoadMatchesFineFem) {
  // Two dummy (pure silicon) blocks under thermal load, clamped top/bottom.
  // This isolates the element-load term (Eq. 19): with the reaction
  // correction the ROM tracks the fine FEM closely; without it the interface
  // would carry spurious forces.
  core::SimulationConfig config = test_config(4);
  const fem::MaterialTable& table = config.materials;

  rom::LocalStageOptions local = config.local;
  const rom::RomModel dummy = rom::run_local_stage(config.geometry, config.mesh_spec, table,
                                                   rom::BlockKind::Dummy, local);
  const rom::BlockGrid grid(2, 1, 4, 4, 4, config.geometry.pitch, config.geometry.height);
  rom::GlobalProblem problem = rom::assemble_global(grid, dummy, nullptr, {}, -250.0);
  const la::Vec u = rom::solve_global(problem, rom::clamp_top_bottom(grid), config.global);
  const auto rom_vm = rom::reconstruct_plane_von_mises(grid, dummy, nullptr, {}, u, -250.0,
                                                       rom::BlockRange::all(grid));

  // Fine FEM of the same 2x1 pure-silicon domain.
  const mesh::HexMesh fine = mesh::build_array_mesh(
      config.geometry, config.mesh_spec, 2, 1, std::vector<std::uint8_t>{0, 0});
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(fine.top_bottom_nodes());
  fem::FemSolveOptions options;
  options.method = "direct";
  const la::Vec u_fine = fem::solve_thermal_stress(fine, table, -250.0, bc, options);
  const fem::PlaneGrid plane = fem::make_block_plane_grid(
      config.geometry.pitch, 2, 1, config.local.samples_per_block, 0.5 * config.geometry.height);
  const auto ref_vm =
      fem::to_von_mises(fem::sample_plane_stress(fine, table, u_fine, -250.0, plane));

  // Normalize by the hydrostatic scale (von Mises itself is near zero in the
  // core, so normalized MAE on vm alone is too forgiving; use max ref).
  EXPECT_LT(fem::normalized_mae(ref_vm, rom_vm), 0.03);
}

class EndToEndConvergence : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndConvergence, ErrorWithinBand) {
  // 2x2 TSV array: ROM vs fine FEM on the identical voxel model.
  const int nodes = GetParam();
  core::SimulationConfig config = test_config(nodes);
  core::MoreStressSimulator sim(config);
  const core::ArrayResult rom = sim.simulate_array(2, 2);

  fem::FemSolveOptions options;
  options.method = "direct";
  const core::ReferenceResult ref = core::reference_array(config, 2, 2, options);
  const double err = core::field_error(ref, rom.von_mises);
  // Error bands decrease with node count (loose bounds; exact decay is
  // checked below).
  const double band = nodes <= 2 ? 0.25 : nodes == 3 ? 0.10 : 0.06;
  EXPECT_LT(err, band) << "nodes=" << nodes;
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, EndToEndConvergence, ::testing::Values(2, 3, 4, 5));

TEST(EndToEnd, ErrorDecreasesMonotonicallyWithNodes) {
  fem::FemSolveOptions options;
  options.method = "direct";
  const core::ReferenceResult ref = core::reference_array(test_config(3), 2, 2, options);

  double previous = 1e9;
  for (int nodes : {2, 3, 4, 5}) {
    core::MoreStressSimulator sim(test_config(nodes));
    const core::ArrayResult rom = sim.simulate_array(2, 2);
    const double err = core::field_error(ref, rom.von_mises);
    EXPECT_LT(err, previous) << "nodes=" << nodes;
    previous = err;
  }
}

TEST(EndToEnd, RomIsExactWhenBoundaryIsResolved) {
  // Single block, every surface node constrained: the ROM reconstruction
  // solves exactly the same Dirichlet problem the fine FEM solves when its
  // boundary values are the Lagrange interpolation of the nodal data. This
  // pins the local-stage bases against an independent solve.
  core::SimulationConfig config = test_config(3);
  core::MoreStressSimulator sim(config);

  const auto smooth = [](const mesh::Point3& p) {
    return std::array<double, 3>{1e-4 * p.x * p.x / 15.0, -2e-4 * p.y, 1e-4 * (p.z - 25.0)};
  };
  const core::ArrayResult rom = sim.simulate_submodel(1, 1, 0, smooth);

  // Fine reference: boundary values = Lagrange interpolation of smooth() at
  // the surface nodes (NOT smooth() itself — the quadratic x-term is outside
  // the 3-node interpolation space along edges only in combination).
  const mesh::HexMesh fine = mesh::build_tsv_block_mesh(config.geometry, config.mesh_spec);
  const rom::SurfaceNodeSet sns = sim.tsv_model().surface_nodes();
  la::Vec nodal(3 * sns.count());
  for (la::idx_t m = 0; m < sns.count(); ++m) {
    const auto v = smooth(sns.position(m));
    for (int c = 0; c < 3; ++c) nodal[3 * m + c] = v[c];
  }
  const auto bnodes = fine.boundary_nodes();
  la::Vec values;
  values.reserve(3 * bnodes.size());
  for (la::idx_t node : bnodes) {
    const mesh::Point3 p = fine.node_pos(node);
    double interp[3] = {0.0, 0.0, 0.0};
    for (la::idx_t m = 0; m < sns.count(); ++m) {
      const double w = sns.weight(p, m);
      if (w == 0.0) continue;
      for (int c = 0; c < 3; ++c) interp[c] += w * nodal[3 * m + c];
    }
    values.insert(values.end(), {interp[0], interp[1], interp[2]});
  }
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(bnodes, values);
  fem::FemSolveOptions options;
  options.method = "direct";
  const la::Vec u_fine =
      fem::solve_thermal_stress(fine, config.materials, config.thermal_load, bc, options);
  const fem::PlaneGrid plane = fem::make_block_plane_grid(
      config.geometry.pitch, 1, 1, config.local.samples_per_block, 0.5 * config.geometry.height);
  const auto ref_vm = fem::to_von_mises(
      fem::sample_plane_stress(fine, config.materials, u_fine, config.thermal_load, plane));

  EXPECT_LT(fem::normalized_mae(ref_vm, rom.von_mises), 1e-7);
}

TEST(EndToEnd, RomBeatsSuperpositionOnTightPitch) {
  // The headline claim at test scale: on a small-pitch array the ROM error
  // is far below linear superposition's.
  core::SimulationConfig config = test_config(4);
  config.geometry.pitch = 10.0;
  core::MoreStressSimulator sim(config);
  const core::ArrayResult rom = sim.simulate_array(3, 3);

  fem::FemSolveOptions options;
  options.method = "direct";
  const core::ReferenceResult ref = core::reference_array(config, 3, 3, options);

  baseline::SuperpositionModel::BuildOptions build;
  build.window_blocks = 3;
  build.samples_per_block = config.local.samples_per_block;
  build.fem.method = "direct";
  const auto superposition = baseline::SuperpositionModel::build(
      config.geometry, config.mesh_spec, config.materials, build);
  const auto sp_vm = fem::to_von_mises(superposition.estimate_array(3, 3));

  const double rom_err = core::field_error(ref, rom.von_mises);
  const double sp_err = core::field_error(ref, sp_vm);
  EXPECT_LT(rom_err, sp_err) << "rom=" << rom_err << " superposition=" << sp_err;
  EXPECT_LT(rom_err, 0.06);
}

}  // namespace
}  // namespace ms
