#include "la/precond.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::la {
namespace {

CsrMatrix spd_tridiag(idx_t n) {
  TripletList t(n, n);
  for (idx_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  return CsrMatrix::from_triplets(t);
}

TEST(IdentityPreconditioner, IsIdentity) {
  IdentityPreconditioner m;
  Vec z;
  m.apply({1.0, -2.0, 3.0}, z);
  EXPECT_EQ(z, (Vec{1.0, -2.0, 3.0}));
  EXPECT_EQ(m.memory_bytes(), 0u);
}

TEST(JacobiPreconditioner, DividesByDiagonal) {
  const CsrMatrix a = spd_tridiag(3);
  JacobiPreconditioner m(a);
  Vec z;
  m.apply({4.0, 8.0, 12.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
  EXPECT_DOUBLE_EQ(z[2], 3.0);
}

TEST(JacobiPreconditioner, ZeroDiagonalIsSafe) {
  TripletList t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);  // zero diagonal
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  JacobiPreconditioner m(a);
  Vec z;
  m.apply({5.0, 7.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
}

TEST(SsorPreconditioner, ExactForDiagonalMatrix) {
  // With no off-diagonals SSOR(omega=1) reduces to Jacobi.
  TripletList t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 1, 4.0);
  t.add(2, 2, 8.0);
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  SsorPreconditioner m(a);
  Vec z;
  m.apply({2.0, 4.0, 8.0}, z);
  EXPECT_NEAR(z[0], 1.0, 1e-14);
  EXPECT_NEAR(z[1], 1.0, 1e-14);
  EXPECT_NEAR(z[2], 1.0, 1e-14);
}

TEST(SsorPreconditioner, ApplyIsSymmetric) {
  // SSOR with symmetric A is a symmetric operator: <M^{-1}u, v> = <u, M^{-1}v>.
  const CsrMatrix a = spd_tridiag(8);
  SsorPreconditioner m(a);
  Vec u(8), v(8), mu, mv;
  for (idx_t i = 0; i < 8; ++i) {
    u[i] = std::sin(i + 1.0);
    v[i] = std::cos(2.0 * i);
  }
  m.apply(u, mu);
  m.apply(v, mv);
  EXPECT_NEAR(dot(mu, v), dot(u, mv), 1e-12);
}

TEST(SsorPreconditioner, RejectsBadOmega) {
  const CsrMatrix a = spd_tridiag(3);
  EXPECT_THROW(SsorPreconditioner(a, 0.0), std::invalid_argument);
  EXPECT_THROW(SsorPreconditioner(a, 2.0), std::invalid_argument);
}

TEST(MakePreconditioner, FactoryDispatch) {
  const CsrMatrix a = spd_tridiag(4);
  EXPECT_NE(make_preconditioner("none", a), nullptr);
  EXPECT_NE(make_preconditioner("jacobi", a), nullptr);
  EXPECT_NE(make_preconditioner("ssor", a), nullptr);
  EXPECT_THROW(make_preconditioner("amg", a), std::invalid_argument);
}

}  // namespace
}  // namespace ms::la
