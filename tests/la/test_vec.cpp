#include "la/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::la {
namespace {

TEST(Vec, DotAndNorm) {
  const Vec x{1.0, 2.0, 3.0};
  const Vec y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(norm2(x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(norm_inf(y), 6.0);
}

TEST(Vec, AxpyFamilies) {
  Vec y{1.0, 1.0};
  axpy(2.0, {3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  axpby(1.0, {1.0, 1.0}, -1.0, y);
  EXPECT_DOUBLE_EQ(y[0], -6.0);
  EXPECT_DOUBLE_EQ(y[1], -8.0);
  scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[0], -3.0);
}

TEST(Vec, ZerosAndDiff) {
  const Vec z = zeros(4);
  EXPECT_EQ(z.size(), 4u);
  EXPECT_DOUBLE_EQ(norm2(z), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff({1.0, 2.0}, {1.5, 1.0}), 1.0);
}

TEST(Vec, CauchySchwarzProperty) {
  // |<x,y>| <= |x| |y| for a family of deterministic pseudo-random vectors.
  for (int seed = 1; seed <= 8; ++seed) {
    Vec x(50), y(50);
    unsigned state = static_cast<unsigned>(seed);
    auto next = [&state]() {
      state = state * 1664525u + 1013904223u;
      return static_cast<double>(state % 1000) / 500.0 - 1.0;
    };
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = next();
      y[i] = next();
    }
    EXPECT_LE(std::fabs(dot(x, y)), norm2(x) * norm2(y) + 1e-12);
  }
}

}  // namespace
}  // namespace ms::la
