#include "la/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::la {
namespace {

/// Deterministic pseudo-random matrix generator for property sweeps.
DenseMatrix random_matrix(idx_t rows, idx_t cols, unsigned seed) {
  DenseMatrix m(rows, cols);
  unsigned state = seed * 2654435761u + 1u;
  for (idx_t i = 0; i < rows; ++i) {
    for (idx_t j = 0; j < cols; ++j) {
      state = state * 1664525u + 1013904223u;
      m(i, j) = static_cast<double>(state % 2000) / 1000.0 - 1.0;
    }
  }
  return m;
}

/// SPD matrix A = R^T R + n I.
DenseMatrix random_spd(idx_t n, unsigned seed) {
  const DenseMatrix r = random_matrix(n, n, seed);
  DenseMatrix a = r.transpose_matmul(r);
  for (idx_t i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

TEST(DenseMatrix, MulAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Vec y;
  a.mul({1.0, 1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  Vec z;
  a.mul_transpose({1.0, 1.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
  const DenseMatrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
}

TEST(DenseMatrix, MatmulMatchesManual) {
  const DenseMatrix a = random_matrix(3, 4, 1);
  const DenseMatrix b = random_matrix(4, 2, 2);
  const DenseMatrix c = a.matmul(b);
  for (idx_t i = 0; i < 3; ++i) {
    for (idx_t j = 0; j < 2; ++j) {
      double sum = 0.0;
      for (idx_t k = 0; k < 4; ++k) sum += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), sum, 1e-14);
    }
  }
}

TEST(DenseMatrix, TransposeMatmulMatchesExplicitTranspose) {
  const DenseMatrix a = random_matrix(5, 3, 3);
  const DenseMatrix b = random_matrix(5, 2, 4);
  const DenseMatrix left = a.transpose_matmul(b);
  const DenseMatrix right = a.transposed().matmul(b);
  EXPECT_LT(left.frobenius_diff(right), 1e-13);
}

TEST(DenseMatrix, SymmetryError) {
  DenseMatrix a = DenseMatrix::identity(3);
  EXPECT_DOUBLE_EQ(a.symmetry_error(), 0.0);
  a(0, 2) = 5.0;
  EXPECT_DOUBLE_EQ(a.symmetry_error(), 5.0);
}

class DenseLuProperty : public ::testing::TestWithParam<int> {};

TEST_P(DenseLuProperty, SolveRecoversKnownSolution) {
  const idx_t n = 2 + GetParam() % 9;
  const unsigned seed = static_cast<unsigned>(GetParam());
  DenseMatrix a = random_matrix(n, n, seed);
  for (idx_t i = 0; i < n; ++i) a(i, i) += n;  // diagonally dominant
  Vec x_true(n);
  for (idx_t i = 0; i < n; ++i) x_true[i] = std::sin(i + 1.0 + seed);
  Vec b;
  a.mul(x_true, b);
  const DenseLu lu(a);
  const Vec x = lu.solve(b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseLuProperty, ::testing::Range(1, 13));

TEST(DenseLu, PivotingHandlesZeroLeadingEntry) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const DenseLu lu(a);
  const Vec x = lu.solve(Vec{2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-14);
}

TEST(DenseLu, SingularThrows) {
  DenseMatrix a(2, 2);  // rank 1
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(DenseLu{a}, std::runtime_error);
}

TEST(DenseLu, MultiRhsSolve) {
  const DenseMatrix a = random_spd(4, 7);
  const DenseMatrix b = random_matrix(4, 3, 8);
  const DenseLu lu(a);
  const DenseMatrix x = lu.solve(b);
  const DenseMatrix ax = a.matmul(x);
  EXPECT_LT(ax.frobenius_diff(b), 1e-9);
}

class DenseCholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(DenseCholeskyProperty, MatchesLuOnSpd) {
  const idx_t n = 3 + GetParam() % 7;
  const DenseMatrix a = random_spd(n, static_cast<unsigned>(GetParam()));
  Vec b(n);
  for (idx_t i = 0; i < n; ++i) b[i] = std::cos(i + 0.5);
  const DenseCholesky chol(a);
  const DenseLu lu(a);
  EXPECT_LT(max_abs_diff(chol.solve(b), lu.solve(b)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseCholeskyProperty, ::testing::Range(1, 9));

TEST(DenseCholesky, RejectsIndefinite) {
  DenseMatrix a = DenseMatrix::identity(2);
  a(1, 1) = -1.0;
  EXPECT_THROW(DenseCholesky{a}, std::runtime_error);
}

}  // namespace
}  // namespace ms::la
