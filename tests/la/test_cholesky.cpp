#include "la/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/dense.hpp"

namespace ms::la {
namespace {

/// 2-D 5-point Laplacian on an m x m grid (SPD, sparse, realistic fill).
CsrMatrix laplacian_2d(idx_t m) {
  const idx_t n = m * m;
  TripletList t(n, n);
  for (idx_t j = 0; j < m; ++j) {
    for (idx_t i = 0; i < m; ++i) {
      const idx_t u = j * m + i;
      t.add(u, u, 4.0);
      if (i > 0) t.add(u, u - 1, -1.0);
      if (i + 1 < m) t.add(u, u + 1, -1.0);
      if (j > 0) t.add(u, u - m, -1.0);
      if (j + 1 < m) t.add(u, u + m, -1.0);
    }
  }
  return CsrMatrix::from_triplets(t);
}

Vec smooth_rhs(idx_t n) {
  Vec b(n);
  for (idx_t i = 0; i < n; ++i) b[i] = std::sin(0.1 * i) + 0.3 * std::cos(0.05 * i);
  return b;
}

SparseCholesky::Options make_options(SparseCholesky::Ordering ordering,
                                     SparseCholesky::Method method) {
  SparseCholesky::Options o;
  o.ordering = ordering;
  o.method = method;
  return o;
}

class CholeskyGridSizes : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyGridSizes, ResidualIsTiny) {
  const idx_t m = GetParam();
  const CsrMatrix a = laplacian_2d(m);
  const Vec b = smooth_rhs(a.rows());
  const SparseCholesky chol(a);
  const Vec x = chol.solve(b);
  Vec ax;
  a.mul(x, ax);
  EXPECT_LT(max_abs_diff(ax, b), 1e-10) << "grid " << m << "x" << m;
}

INSTANTIATE_TEST_SUITE_P(Grids, CholeskyGridSizes, ::testing::Values(2, 3, 5, 8, 13, 21));

TEST(SparseCholesky, MatchesDenseCholesky) {
  const CsrMatrix a = laplacian_2d(4);
  DenseMatrix ad(a.rows(), a.cols());
  for (idx_t i = 0; i < a.rows(); ++i) {
    for (idx_t j = 0; j < a.cols(); ++j) ad(i, j) = a.coeff(i, j);
  }
  const Vec b = smooth_rhs(a.rows());
  const Vec sparse_x = SparseCholesky(a).solve(b);
  const Vec dense_x = DenseCholesky(ad).solve(b);
  EXPECT_LT(max_abs_diff(sparse_x, dense_x), 1e-11);
}

TEST(SparseCholesky, AllOrderingsAndMethodsAgree) {
  const CsrMatrix a = laplacian_2d(7);
  const Vec b = smooth_rhs(a.rows());
  const Vec reference = SparseCholesky(a).solve(b);
  for (const auto ordering : {SparseCholesky::Ordering::kAmd, SparseCholesky::Ordering::kRcm,
                              SparseCholesky::Ordering::kNatural}) {
    for (const auto method :
         {SparseCholesky::Method::kSupernodal, SparseCholesky::Method::kSimplicial}) {
      const SparseCholesky chol(a, make_options(ordering, method));
      EXPECT_LT(max_abs_diff(chol.solve(b), reference), 1e-11)
          << chol.ordering_name() << "/" << chol.method_name();
    }
  }
}

TEST(SparseCholesky, AmdReducesFillBelowRcm) {
  // On a 2-D grid AMD must not lose to RCM; the decisive 3-D case is covered
  // in test_ordering / test_supernodal with FEM matrices.
  const CsrMatrix a = laplacian_2d(15);
  const SparseCholesky amd(a, make_options(SparseCholesky::Ordering::kAmd,
                                           SparseCholesky::Method::kSimplicial));
  const SparseCholesky rcm(a, make_options(SparseCholesky::Ordering::kRcm,
                                           SparseCholesky::Method::kSimplicial));
  EXPECT_LE(amd.factor_nnz(), rcm.factor_nnz());
  EXPECT_GT(amd.factor_nnz(), a.nnz() / 2);  // sanity: factor holds the matrix
  EXPECT_GT(amd.fill_ratio(), 1.0);
  EXPECT_EQ(std::string(amd.ordering_name()), "amd");
  EXPECT_EQ(std::string(rcm.ordering_name()), "rcm");
}

TEST(SparseCholesky, SupernodalAndSimplicialFactorsMatch) {
  const CsrMatrix a = laplacian_2d(12);
  const SparseCholesky sn(a, make_options(SparseCholesky::Ordering::kAmd,
                                          SparseCholesky::Method::kSupernodal));
  const SparseCholesky si(a, make_options(SparseCholesky::Ordering::kAmd,
                                          SparseCholesky::Method::kSimplicial));
  ASSERT_EQ(sn.factor_nnz(), si.factor_nnz());
  EXPECT_GT(sn.num_supernodes(), 0);
  EXPECT_LT(sn.num_supernodes(), sn.order());  // panels really group columns
  EXPECT_EQ(si.num_supernodes(), 0);

  std::vector<offset_t> cp_sn, cp_si;
  std::vector<idx_t> ri_sn, ri_si;
  std::vector<double> v_sn, v_si;
  sn.extract_factor(cp_sn, ri_sn, v_sn);
  si.extract_factor(cp_si, ri_si, v_si);
  ASSERT_EQ(cp_sn, cp_si);
  ASSERT_EQ(ri_sn, ri_si);
  double max_l = 0.0, max_diff = 0.0;
  for (std::size_t k = 0; k < v_si.size(); ++k) {
    max_l = std::max(max_l, std::abs(v_si[k]));
    max_diff = std::max(max_diff, std::abs(v_sn[k] - v_si[k]));
  }
  EXPECT_LT(max_diff / max_l, 1e-12);
}

TEST(SparseCholesky, SolveMultiMatchesColumnwiseSolvesBitwise) {
  const CsrMatrix a = laplacian_2d(9);
  const idx_t n = a.rows();
  const idx_t nrhs = 5;
  Vec panel(static_cast<std::size_t>(n) * nrhs);
  for (idx_t r = 0; r < nrhs; ++r) {
    for (idx_t i = 0; i < n; ++i) {
      panel[static_cast<std::size_t>(r) * n + i] = std::cos(0.07 * i + r);
    }
  }
  for (const auto method :
       {SparseCholesky::Method::kSupernodal, SparseCholesky::Method::kSimplicial}) {
    const SparseCholesky chol(a, make_options(SparseCholesky::Ordering::kAmd, method));
    const Vec x_panel = chol.solve_multi(panel, nrhs);
    for (idx_t r = 0; r < nrhs; ++r) {
      const Vec b(panel.begin() + static_cast<std::size_t>(r) * n,
                  panel.begin() + static_cast<std::size_t>(r + 1) * n);
      Vec x, work;
      chol.solve_with(b, x, work);
      for (idx_t i = 0; i < n; ++i) {
        ASSERT_EQ(x_panel[static_cast<std::size_t>(r) * n + i], x[i])
            << chol.method_name() << " rhs " << r << " dof " << i;
      }
    }
  }
}

TEST(SparseCholesky, RejectsIndefinite) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -1.0);
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  // Both back ends under the AMD default, plus the simplicial fallback.
  EXPECT_THROW(SparseCholesky{a}, std::runtime_error);
  EXPECT_THROW(SparseCholesky(a, make_options(SparseCholesky::Ordering::kAmd,
                                              SparseCholesky::Method::kSimplicial)),
               std::runtime_error);
  EXPECT_THROW(SparseCholesky(a, make_options(SparseCholesky::Ordering::kNatural,
                                              SparseCholesky::Method::kSupernodal)),
               std::runtime_error);
}

TEST(SparseCholesky, RejectsRectangular) {
  TripletList t(2, 3);
  t.add(0, 0, 1.0);
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  EXPECT_THROW(SparseCholesky{a}, std::invalid_argument);
}

TEST(SparseCholesky, MultipleSolvesReuseFactor) {
  const CsrMatrix a = laplacian_2d(6);
  const SparseCholesky chol(a);
  Vec x;
  for (int rhs = 0; rhs < 5; ++rhs) {
    Vec b(a.rows());
    for (idx_t i = 0; i < a.rows(); ++i) b[i] = std::sin(0.2 * i + rhs);
    chol.solve_inplace(b, x);
    Vec ax;
    a.mul(x, ax);
    EXPECT_LT(max_abs_diff(ax, b), 1e-10);
  }
}

TEST(SparseCholesky, MemoryBytesCoversFactorAndPermutedMatrix) {
  const CsrMatrix a = laplacian_2d(8);
  const SparseCholesky chol(a);
  // The ledger must own at least the factor values, the permuted matrix
  // copy the numeric phase consumed, and the two permutation arrays.
  const std::size_t floor_bytes = static_cast<std::size_t>(chol.factor_nnz()) * sizeof(double) +
                                  a.memory_bytes() +
                                  2 * static_cast<std::size_t>(a.rows()) * sizeof(idx_t);
  EXPECT_GE(chol.memory_bytes(), floor_bytes);
  EXPECT_EQ(chol.order(), 64);

  // The supernode metadata must be part of the supernodal ledger: the same
  // factor reported without it (pattern + values only) is a strict floor.
  const SparseCholesky natural(a, make_options(SparseCholesky::Ordering::kNatural,
                                               SparseCholesky::Method::kSupernodal));
  EXPECT_GE(natural.memory_bytes(),
            static_cast<std::size_t>(natural.factor_nnz()) * sizeof(double));
  EXPECT_GT(natural.memory_bytes(), 0u);
}

}  // namespace
}  // namespace ms::la
