#include "la/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/dense.hpp"

namespace ms::la {
namespace {

/// 2-D 5-point Laplacian on an m x m grid (SPD, sparse, realistic fill).
CsrMatrix laplacian_2d(idx_t m) {
  const idx_t n = m * m;
  TripletList t(n, n);
  for (idx_t j = 0; j < m; ++j) {
    for (idx_t i = 0; i < m; ++i) {
      const idx_t u = j * m + i;
      t.add(u, u, 4.0);
      if (i > 0) t.add(u, u - 1, -1.0);
      if (i + 1 < m) t.add(u, u + 1, -1.0);
      if (j > 0) t.add(u, u - m, -1.0);
      if (j + 1 < m) t.add(u, u + m, -1.0);
    }
  }
  return CsrMatrix::from_triplets(t);
}

Vec smooth_rhs(idx_t n) {
  Vec b(n);
  for (idx_t i = 0; i < n; ++i) b[i] = std::sin(0.1 * i) + 0.3 * std::cos(0.05 * i);
  return b;
}

class CholeskyGridSizes : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyGridSizes, ResidualIsTiny) {
  const idx_t m = GetParam();
  const CsrMatrix a = laplacian_2d(m);
  const Vec b = smooth_rhs(a.rows());
  const SparseCholesky chol(a);
  const Vec x = chol.solve(b);
  Vec ax;
  a.mul(x, ax);
  EXPECT_LT(max_abs_diff(ax, b), 1e-10) << "grid " << m << "x" << m;
}

INSTANTIATE_TEST_SUITE_P(Grids, CholeskyGridSizes, ::testing::Values(2, 3, 5, 8, 13, 21));

TEST(SparseCholesky, MatchesDenseCholesky) {
  const CsrMatrix a = laplacian_2d(4);
  DenseMatrix ad(a.rows(), a.cols());
  for (idx_t i = 0; i < a.rows(); ++i) {
    for (idx_t j = 0; j < a.cols(); ++j) ad(i, j) = a.coeff(i, j);
  }
  const Vec b = smooth_rhs(a.rows());
  const Vec sparse_x = SparseCholesky(a).solve(b);
  const Vec dense_x = DenseCholesky(ad).solve(b);
  EXPECT_LT(max_abs_diff(sparse_x, dense_x), 1e-11);
}

TEST(SparseCholesky, WithAndWithoutRcmAgree) {
  const CsrMatrix a = laplacian_2d(7);
  const Vec b = smooth_rhs(a.rows());
  SparseCholesky::Options no_rcm;
  no_rcm.use_rcm = false;
  const Vec x1 = SparseCholesky(a).solve(b);
  const Vec x2 = SparseCholesky(a, no_rcm).solve(b);
  EXPECT_LT(max_abs_diff(x1, x2), 1e-11);
}

TEST(SparseCholesky, RcmReducesFill) {
  // On a banded-after-reordering problem RCM should not increase fill.
  const CsrMatrix a = laplacian_2d(15);
  SparseCholesky::Options no_rcm;
  no_rcm.use_rcm = false;
  const SparseCholesky with(a);
  const SparseCholesky without(a, no_rcm);
  EXPECT_LE(with.factor_nnz(), without.factor_nnz() * 2);
  EXPECT_GT(with.factor_nnz(), a.nnz() / 2);  // sanity: factor holds the matrix
}

TEST(SparseCholesky, RejectsIndefinite) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -1.0);
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  EXPECT_THROW(SparseCholesky{a}, std::runtime_error);
}

TEST(SparseCholesky, RejectsRectangular) {
  TripletList t(2, 3);
  t.add(0, 0, 1.0);
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  EXPECT_THROW(SparseCholesky{a}, std::invalid_argument);
}

TEST(SparseCholesky, MultipleSolvesReuseFactor) {
  const CsrMatrix a = laplacian_2d(6);
  const SparseCholesky chol(a);
  Vec x;
  for (int rhs = 0; rhs < 5; ++rhs) {
    Vec b(a.rows());
    for (idx_t i = 0; i < a.rows(); ++i) b[i] = std::sin(0.2 * i + rhs);
    chol.solve_inplace(b, x);
    Vec ax;
    a.mul(x, ax);
    EXPECT_LT(max_abs_diff(ax, b), 1e-10);
  }
}

TEST(SparseCholesky, MemoryBytesPositive) {
  const SparseCholesky chol(laplacian_2d(5));
  EXPECT_GT(chol.memory_bytes(), 0u);
  EXPECT_EQ(chol.order(), 25);
}

}  // namespace
}  // namespace ms::la
