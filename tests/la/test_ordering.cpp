#include "la/ordering.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace ms::la {
namespace {

/// 1-D Laplacian with a random symmetric permutation applied — RCM should
/// recover a small bandwidth.
CsrMatrix shuffled_laplacian(idx_t n, unsigned seed) {
  std::vector<idx_t> shuffle(n);
  std::iota(shuffle.begin(), shuffle.end(), 0);
  unsigned state = seed;
  for (idx_t i = n - 1; i > 0; --i) {
    state = state * 1664525u + 1013904223u;
    std::swap(shuffle[i], shuffle[state % (i + 1)]);
  }
  TripletList t(n, n);
  for (idx_t i = 0; i < n; ++i) {
    t.add(shuffle[i], shuffle[i], 2.0);
    if (i + 1 < n) {
      t.add(shuffle[i], shuffle[i + 1], -1.0);
      t.add(shuffle[i + 1], shuffle[i], -1.0);
    }
  }
  return CsrMatrix::from_triplets(t);
}

TEST(Permutation, IdentityRoundTrip) {
  const Permutation p = Permutation::identity(4);
  const Vec x{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(permute_vector(x, p), x);
  EXPECT_EQ(unpermute_vector(x, p), x);
}

TEST(Permutation, PermuteUnpermuteInverse) {
  const CsrMatrix a = shuffled_laplacian(20, 3);
  const Permutation p = reverse_cuthill_mckee(a);
  Vec x(20);
  for (idx_t i = 0; i < 20; ++i) x[i] = i * 1.5;
  EXPECT_EQ(unpermute_vector(permute_vector(x, p), p), x);
}

TEST(Rcm, ReducesBandwidthOfShuffledChain) {
  const CsrMatrix a = shuffled_laplacian(60, 17);
  const Permutation p = reverse_cuthill_mckee(a);
  const CsrMatrix pa = permute_symmetric(a, p);
  // A path graph has bandwidth 1 under the right ordering; RCM must find it.
  EXPECT_LE(bandwidth(pa), 2);
  EXPECT_GT(bandwidth(a), 5);  // the shuffle really did scatter it
}

TEST(Rcm, PermutedMatrixKeepsSpectrumProxy) {
  // Check P A P^T x' = (A x)' for consistency.
  const CsrMatrix a = shuffled_laplacian(30, 5);
  const Permutation p = reverse_cuthill_mckee(a);
  const CsrMatrix pa = permute_symmetric(a, p);
  Vec x(30);
  for (idx_t i = 0; i < 30; ++i) x[i] = std::sin(static_cast<double>(i));
  Vec ax, pax;
  a.mul(x, ax);
  pa.mul(permute_vector(x, p), pax);
  EXPECT_LT(max_abs_diff(permute_vector(ax, p), pax), 1e-13);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  TripletList t(4, 4);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(2, 2, 1.0);
  t.add(3, 3, 1.0);
  t.add(0, 1, -0.5);
  t.add(1, 0, -0.5);  // one 2-node component + two isolated nodes
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  const Permutation p = reverse_cuthill_mckee(a);
  std::vector<bool> seen(4, false);
  for (idx_t i : p.perm) seen[i] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Bandwidth, DiagonalIsZero) {
  TripletList t(3, 3);
  for (idx_t i = 0; i < 3; ++i) t.add(i, i, 1.0);
  EXPECT_EQ(bandwidth(CsrMatrix::from_triplets(t)), 0);
}

}  // namespace
}  // namespace ms::la
