#include "la/ordering.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace ms::la {
namespace {

/// 1-D Laplacian with a random symmetric permutation applied — RCM should
/// recover a small bandwidth.
CsrMatrix shuffled_laplacian(idx_t n, unsigned seed) {
  std::vector<idx_t> shuffle(n);
  std::iota(shuffle.begin(), shuffle.end(), 0);
  unsigned state = seed;
  for (idx_t i = n - 1; i > 0; --i) {
    state = state * 1664525u + 1013904223u;
    std::swap(shuffle[i], shuffle[state % (i + 1)]);
  }
  TripletList t(n, n);
  for (idx_t i = 0; i < n; ++i) {
    t.add(shuffle[i], shuffle[i], 2.0);
    if (i + 1 < n) {
      t.add(shuffle[i], shuffle[i + 1], -1.0);
      t.add(shuffle[i + 1], shuffle[i], -1.0);
    }
  }
  return CsrMatrix::from_triplets(t);
}

TEST(Permutation, IdentityRoundTrip) {
  const Permutation p = Permutation::identity(4);
  const Vec x{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(permute_vector(x, p), x);
  EXPECT_EQ(unpermute_vector(x, p), x);
}

TEST(Permutation, PermuteUnpermuteInverse) {
  const CsrMatrix a = shuffled_laplacian(20, 3);
  const Permutation p = reverse_cuthill_mckee(a);
  Vec x(20);
  for (idx_t i = 0; i < 20; ++i) x[i] = i * 1.5;
  EXPECT_EQ(unpermute_vector(permute_vector(x, p), p), x);
}

TEST(Rcm, ReducesBandwidthOfShuffledChain) {
  const CsrMatrix a = shuffled_laplacian(60, 17);
  const Permutation p = reverse_cuthill_mckee(a);
  const CsrMatrix pa = permute_symmetric(a, p);
  // A path graph has bandwidth 1 under the right ordering; RCM must find it.
  EXPECT_LE(bandwidth(pa), 2);
  EXPECT_GT(bandwidth(a), 5);  // the shuffle really did scatter it
}

TEST(Rcm, PermutedMatrixKeepsSpectrumProxy) {
  // Check P A P^T x' = (A x)' for consistency.
  const CsrMatrix a = shuffled_laplacian(30, 5);
  const Permutation p = reverse_cuthill_mckee(a);
  const CsrMatrix pa = permute_symmetric(a, p);
  Vec x(30);
  for (idx_t i = 0; i < 30; ++i) x[i] = std::sin(static_cast<double>(i));
  Vec ax, pax;
  a.mul(x, ax);
  pa.mul(permute_vector(x, p), pax);
  EXPECT_LT(max_abs_diff(permute_vector(ax, p), pax), 1e-13);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  TripletList t(4, 4);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(2, 2, 1.0);
  t.add(3, 3, 1.0);
  t.add(0, 1, -0.5);
  t.add(1, 0, -0.5);  // one 2-node component + two isolated nodes
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  const Permutation p = reverse_cuthill_mckee(a);
  std::vector<bool> seen(4, false);
  for (idx_t i : p.perm) seen[i] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Bandwidth, DiagonalIsZero) {
  TripletList t(3, 3);
  for (idx_t i = 0; i < 3; ++i) t.add(i, i, 1.0);
  EXPECT_EQ(bandwidth(CsrMatrix::from_triplets(t)), 0);
}

/// 3-D 7-point Laplacian on an m^3 grid — the graph family every solve path
/// in this repository produces (hex meshes), where minimum degree shines.
CsrMatrix laplacian_3d(idx_t m) {
  const idx_t n = m * m * m;
  TripletList t(n, n);
  const auto id = [m](idx_t i, idx_t j, idx_t k) { return (k * m + j) * m + i; };
  for (idx_t k = 0; k < m; ++k) {
    for (idx_t j = 0; j < m; ++j) {
      for (idx_t i = 0; i < m; ++i) {
        const idx_t u = id(i, j, k);
        t.add(u, u, 6.0);
        if (i > 0) t.add(u, id(i - 1, j, k), -1.0);
        if (i + 1 < m) t.add(u, id(i + 1, j, k), -1.0);
        if (j > 0) t.add(u, id(i, j - 1, k), -1.0);
        if (j + 1 < m) t.add(u, id(i, j + 1, k), -1.0);
        if (k > 0) t.add(u, id(i, j, k - 1), -1.0);
        if (k + 1 < m) t.add(u, id(i, j, k + 1), -1.0);
      }
    }
  }
  return CsrMatrix::from_triplets(t);
}

/// nnz(L) of the Cholesky factor under permutation `p` (symbolic only).
offset_t symbolic_factor_nnz(const CsrMatrix& a, const Permutation& p) {
  const CsrMatrix pa = permute_symmetric(a, p);
  const idx_t n = pa.rows();
  std::vector<idx_t> parent(n, -1), ancestor(n, -1);
  for (idx_t k = 0; k < n; ++k) {
    for (offset_t q = pa.row_ptr()[k]; q < pa.row_ptr()[static_cast<std::size_t>(k) + 1]; ++q) {
      idx_t i = pa.col_idx()[q];
      if (i >= k) break;
      while (i != -1 && i != k) {
        const idx_t next = ancestor[i];
        ancestor[i] = k;
        if (next == -1) parent[i] = k;
        i = next;
      }
    }
  }
  std::vector<idx_t> mark(n, -1);
  offset_t nnz = n;
  for (idx_t k = 0; k < n; ++k) {
    mark[k] = k;
    for (offset_t q = pa.row_ptr()[k]; q < pa.row_ptr()[static_cast<std::size_t>(k) + 1]; ++q) {
      idx_t i = pa.col_idx()[q];
      if (i >= k) break;
      for (; mark[i] != k; i = parent[i]) {
        ++nnz;
        mark[i] = k;
      }
    }
  }
  return nnz;
}

void expect_valid_permutation(const Permutation& p, idx_t n) {
  ASSERT_EQ(p.size(), n);
  std::vector<char> seen(n, 0);
  for (idx_t i = 0; i < n; ++i) {
    const idx_t v = p.perm[i];
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]) << "index " << v << " appears twice";
    seen[v] = 1;
    ASSERT_EQ(p.inv_perm[v], i);
  }
}

TEST(Amd, ProducesValidPermutations) {
  expect_valid_permutation(amd_ordering(laplacian_3d(2)), 8);
  expect_valid_permutation(amd_ordering(laplacian_3d(6)), 216);
  expect_valid_permutation(amd_ordering(shuffled_laplacian(60, 17)), 60);
}

TEST(Amd, DeterministicAcrossRuns) {
  const CsrMatrix a = laplacian_3d(7);
  const Permutation p1 = amd_ordering(a);
  const Permutation p2 = amd_ordering(a);
  EXPECT_EQ(p1.perm, p2.perm);
  EXPECT_EQ(p1.inv_perm, p2.inv_perm);
}

TEST(Amd, HandlesDisconnectedComponentsAndIsolatedNodes) {
  TripletList t(6, 6);
  for (idx_t i = 0; i < 6; ++i) t.add(i, i, 1.0);
  t.add(0, 1, -0.5);
  t.add(1, 0, -0.5);
  t.add(3, 4, -0.25);
  t.add(4, 3, -0.25);
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  expect_valid_permutation(amd_ordering(a), 6);
}

TEST(Amd, BeatsRcmFillOn3dGrids) {
  // The motivating property: on 3-D mesh graphs AMD produces a factor
  // several times sparser than RCM (and the gap widens with size).
  const CsrMatrix a = laplacian_3d(10);
  const offset_t amd_nnz = symbolic_factor_nnz(a, amd_ordering(a));
  const offset_t rcm_nnz = symbolic_factor_nnz(a, reverse_cuthill_mckee(a));
  EXPECT_LT(static_cast<double>(amd_nnz), 0.75 * static_cast<double>(rcm_nnz));
}

TEST(Amd, NoWorseThanNaturalOnChain) {
  // A path graph has a perfect (no-fill) elimination order; AMD must find
  // one (nnz(L) == 2n - 1) even from a scrambled labeling.
  const CsrMatrix a = shuffled_laplacian(50, 7);
  EXPECT_EQ(symbolic_factor_nnz(a, amd_ordering(a)), 2 * 50 - 1);
}

TEST(Permutation, ThenComposes) {
  const CsrMatrix a = shuffled_laplacian(12, 3);
  const Permutation p = reverse_cuthill_mckee(a);
  Permutation rev;
  rev.perm.resize(12);
  rev.inv_perm.resize(12);
  for (idx_t i = 0; i < 12; ++i) rev.perm[i] = 11 - i;
  for (idx_t i = 0; i < 12; ++i) rev.inv_perm[rev.perm[i]] = i;
  const Permutation combined = p.then(rev);
  for (idx_t i = 0; i < 12; ++i) EXPECT_EQ(combined.perm[i], p.perm[rev.perm[i]]);
  expect_valid_permutation(combined, 12);
}

}  // namespace
}  // namespace ms::la
