// Iterative-solver breakdown: on an indefinite or singular operator CG and
// GMRES must report a *structured* failure (breakdown flag + reason) instead
// of silently stalling, diverging, or emitting NaN into the solution. The
// sweep engine turns these into kDidNotConverge scenario failures, so the
// contract here is load-bearing for the robustness layer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "la/cg.hpp"
#include "la/gmres.hpp"
#include "la/vec.hpp"

namespace ms::la {
namespace {

CsrMatrix diagonal(std::initializer_list<double> entries) {
  const idx_t n = static_cast<idx_t>(entries.size());
  TripletList t(n, n);
  idx_t i = 0;
  for (double d : entries) {
    t.add(i, i, d);
    ++i;
  }
  return CsrMatrix::from_triplets(t);
}

TEST(SolverBreakdown, CgReportsIndefiniteOperator) {
  // diag(1, -1) with b = (1, 1): the first search direction has p.Ap = 0,
  // which CG's SPD assumption cannot survive.
  const CsrMatrix a = diagonal({1.0, -1.0});
  const Vec b(2, 1.0);
  Vec x(2, 0.0);
  const IterativeResult result = conjugate_gradient(a, b, x, nullptr, {});
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.breakdown);
  EXPECT_EQ(std::string(result.breakdown_reason), "indefinite operator (p.Ap <= 0)");
  EXPECT_TRUE(all_finite(x));  // the last consistent iterate, never NaN
}

TEST(SolverBreakdown, CgReportsNonFiniteOperator) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, std::numeric_limits<double>::quiet_NaN());
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  const Vec b(2, 1.0);
  Vec x(2, 0.0);
  const IterativeResult result = conjugate_gradient(a, b, x, nullptr, {});
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.breakdown);
  EXPECT_EQ(std::string(result.breakdown_reason), "non-finite curvature p.Ap");
}

TEST(SolverBreakdown, GmresReportsSingularOperator) {
  // diag(1, 1, 0) with b touching the null space: no x satisfies Ax = b, so
  // GMRES must end in a structured breakdown (rank-deficient Hessenberg or
  // stagnation across a restart — both count) with a finite iterate.
  const CsrMatrix a = diagonal({1.0, 1.0, 0.0});
  const Vec b(3, 1.0);
  Vec x(3, 0.0);
  GmresOptions options;
  options.restart = 3;
  options.max_iterations = 60;
  const IterativeResult result = gmres(a, b, x, nullptr, options);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.breakdown);
  EXPECT_NE(std::string(result.breakdown_reason), "");
  EXPECT_TRUE(all_finite(x));
}

TEST(SolverBreakdown, GmresReportsNonFiniteOperator) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, std::numeric_limits<double>::infinity());
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  const Vec b(2, 1.0);
  Vec x(2, 0.0);
  const IterativeResult result = gmres(a, b, x, nullptr, {});
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.breakdown);
  EXPECT_NE(std::string(result.breakdown_reason), "");
}

TEST(SolverBreakdown, HealthySystemsStillConvergeCleanly) {
  // The breakdown guards must not misfire on a well-posed SPD solve.
  const CsrMatrix a = diagonal({4.0, 3.0, 2.0, 1.0});
  const Vec b(4, 1.0);
  Vec x_cg(4, 0.0);
  const IterativeResult cg = conjugate_gradient(a, b, x_cg, nullptr, {});
  EXPECT_TRUE(cg.converged);
  EXPECT_FALSE(cg.breakdown);
  Vec x_gm(4, 0.0);
  const IterativeResult gm = gmres(a, b, x_gm, nullptr, {});
  EXPECT_TRUE(gm.converged);
  EXPECT_FALSE(gm.breakdown);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x_cg[i], 1.0 / static_cast<double>(4 - i), 1e-8);
    EXPECT_NEAR(x_gm[i], 1.0 / static_cast<double>(4 - i), 1e-8);
  }
}

}  // namespace
}  // namespace ms::la
