#include "la/sparse.hpp"

#include <gtest/gtest.h>

namespace ms::la {
namespace {

CsrMatrix small_matrix() {
  // [1 0 2]
  // [0 3 0]
  // [4 0 5]
  TripletList t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 2, 2.0);
  t.add(1, 1, 3.0);
  t.add(2, 0, 4.0);
  t.add(2, 2, 5.0);
  return CsrMatrix::from_triplets(t);
}

TEST(CsrMatrix, FromTripletsSortsAndSums) {
  TripletList t(2, 2);
  t.add(0, 1, 1.0);
  t.add(0, 0, 2.0);
  t.add(0, 1, 3.0);  // duplicate, summed
  t.add(1, 1, 4.0);
  const CsrMatrix m = CsrMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.coeff(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.coeff(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.coeff(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.coeff(1, 1), 4.0);
  // Columns sorted within the row.
  EXPECT_LT(m.col_idx()[0], m.col_idx()[1]);
}

TEST(CsrMatrix, DropZerosControlsCancelledEntries) {
  TripletList t(1, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, -1.0);
  t.add(0, 1, 2.0);
  EXPECT_EQ(CsrMatrix::from_triplets(t, false).nnz(), 2);
  EXPECT_EQ(CsrMatrix::from_triplets(t, true).nnz(), 1);
}

TEST(CsrMatrix, MulMatchesDense) {
  const CsrMatrix m = small_matrix();
  Vec y;
  m.mul({1.0, 2.0, 3.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 19.0);
  m.mul_add(2.0, {1.0, 2.0, 3.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 21.0);
}

TEST(CsrMatrix, DiagonalExtraction) {
  const Vec d = small_matrix().diagonal();
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(CsrMatrix, SymmetryError) {
  EXPECT_DOUBLE_EQ(small_matrix().symmetry_error(), 2.0);  // |2 - 4|
  TripletList t(2, 2);
  t.add(0, 1, 7.0);
  t.add(1, 0, 7.0);
  EXPECT_DOUBLE_EQ(CsrMatrix::from_triplets(t).symmetry_error(), 0.0);
}

TEST(CsrMatrix, SubmatrixExtractsBlocks) {
  const CsrMatrix m = small_matrix();
  // Keep rows {0, 2} and columns {0, 2}.
  const std::vector<idx_t> keep{0, -1, 1};
  const CsrMatrix sub = m.submatrix(keep, 2, keep, 2);
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_DOUBLE_EQ(sub.coeff(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub.coeff(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(sub.coeff(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.coeff(1, 1), 5.0);
}

TEST(CsrMatrix, SubmatrixRectangular) {
  const CsrMatrix m = small_matrix();
  // Rows {1}, all columns.
  const std::vector<idx_t> rows{-1, 0, -1};
  const std::vector<idx_t> cols{0, 1, 2};
  const CsrMatrix sub = m.submatrix(rows, 1, cols, 3);
  EXPECT_EQ(sub.rows(), 1);
  EXPECT_EQ(sub.cols(), 3);
  EXPECT_DOUBLE_EQ(sub.coeff(0, 1), 3.0);
}

TEST(CsrMatrix, FromRawValidates) {
  EXPECT_THROW(CsrMatrix::from_raw(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  const CsrMatrix m = CsrMatrix::from_raw(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0});
  EXPECT_EQ(m.nnz(), 2);
}

TEST(CsrMatrix, MemoryBytesScalesWithNnz) {
  const CsrMatrix m = small_matrix();
  EXPECT_GE(m.memory_bytes(), static_cast<std::size_t>(m.nnz()) * (sizeof(double) + sizeof(idx_t)));
}

}  // namespace
}  // namespace ms::la
