#include "la/gmres.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/cholesky.hpp"

namespace ms::la {
namespace {

CsrMatrix spd_tridiag(idx_t n) {
  TripletList t(n, n);
  for (idx_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  return CsrMatrix::from_triplets(t);
}

/// Nonsymmetric but well-conditioned: tridiagonal with drift.
CsrMatrix nonsymmetric(idx_t n) {
  TripletList t(n, n);
  for (idx_t i = 0; i < n; ++i) {
    t.add(i, i, 5.0);
    if (i > 0) t.add(i, i - 1, -2.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  return CsrMatrix::from_triplets(t);
}

Vec rhs_of(idx_t n) {
  Vec b(n);
  for (idx_t i = 0; i < n; ++i) b[i] = std::cos(0.2 * i);
  return b;
}

TEST(Gmres, SolvesSpdSystem) {
  const CsrMatrix a = spd_tridiag(50);
  const Vec b = rhs_of(50);
  const Vec x_ref = SparseCholesky(a).solve(b);
  Vec x;
  GmresOptions options;
  options.rel_tol = 1e-12;
  const IterativeResult result = gmres(a, b, x, nullptr, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(x, x_ref), 1e-9);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  const CsrMatrix a = nonsymmetric(60);
  Vec x_true(60);
  for (idx_t i = 0; i < 60; ++i) x_true[i] = std::sin(0.1 * i);
  Vec b;
  a.mul(x_true, b);
  Vec x;
  GmresOptions options;
  options.rel_tol = 1e-12;
  const IterativeResult result = gmres(a, b, x, nullptr, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-8);
}

class GmresRestart : public ::testing::TestWithParam<int> {};

TEST_P(GmresRestart, ConvergesAcrossRestartLengths) {
  const CsrMatrix a = nonsymmetric(40);
  const Vec b = rhs_of(40);
  Vec x;
  GmresOptions options;
  options.rel_tol = 1e-10;
  options.restart = GetParam();
  options.max_iterations = 5000;
  const IterativeResult result = gmres(a, b, x, nullptr, options);
  EXPECT_TRUE(result.converged) << "restart=" << GetParam();
  Vec ax;
  a.mul(x, ax);
  EXPECT_LT(max_abs_diff(ax, b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Restarts, GmresRestart, ::testing::Values(3, 5, 10, 40));

TEST(Gmres, PreconditionedConvergesFaster) {
  const CsrMatrix a = spd_tridiag(80);
  const Vec b = rhs_of(80);
  GmresOptions options;
  options.rel_tol = 1e-10;
  Vec x1, x2;
  const IterativeResult plain = gmres(a, b, x1, nullptr, options);
  auto jacobi = make_preconditioner("jacobi", a);
  const IterativeResult pre = gmres(a, b, x2, jacobi.get(), options);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations + 2);
}

TEST(Gmres, ZeroRhsShortCircuits) {
  const CsrMatrix a = spd_tridiag(10);
  Vec x;
  const IterativeResult result = gmres(a, Vec(10, 0.0), x, nullptr, {});
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

TEST(Gmres, AgreesWithCholeskyToTolerance) {
  const CsrMatrix a = spd_tridiag(30);
  const Vec b = rhs_of(30);
  const Vec x_ref = SparseCholesky(a).solve(b);
  Vec x;
  GmresOptions options;
  options.rel_tol = 1e-13;
  gmres(a, b, x, nullptr, options);
  EXPECT_LT(max_abs_diff(x, x_ref), 1e-9);
}

}  // namespace
}  // namespace ms::la
