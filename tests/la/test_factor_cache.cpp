#include "la/factor_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ms::la {
namespace {

/// 2-D 5-point Laplacian on an m x m grid (SPD, sparse, realistic fill).
CsrMatrix laplacian_2d(idx_t m) {
  const idx_t n = m * m;
  TripletList t(n, n);
  for (idx_t j = 0; j < m; ++j) {
    for (idx_t i = 0; i < m; ++i) {
      const idx_t u = j * m + i;
      t.add(u, u, 4.0);
      if (i > 0) t.add(u, u - 1, -1.0);
      if (i + 1 < m) t.add(u, u + 1, -1.0);
      if (j > 0) t.add(u, u - m, -1.0);
      if (j + 1 < m) t.add(u, u + m, -1.0);
    }
  }
  return CsrMatrix::from_triplets(t);
}

FactorCache::Entry build_entry(idx_t m) {
  FactorCache::Entry entry;
  auto matrix = std::make_shared<CsrMatrix>(laplacian_2d(m));
  entry.factor = std::make_shared<SparseCholesky>(*matrix);
  entry.matrix = std::move(matrix);
  return entry;
}

TEST(FactorCache, MissBuildsThenHitsShareOneEntry) {
  FactorCache cache;
  EXPECT_FALSE(cache.contains("k"));
  bool built = false;
  const FactorCache::Entry first = cache.get_or_create("k", [] { return build_entry(6); }, &built);
  EXPECT_TRUE(built);
  EXPECT_TRUE(cache.contains("k"));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const FactorCache::Entry second =
      cache.get_or_create("k", [] { return build_entry(6); }, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(second.factor.get(), first.factor.get());
  EXPECT_EQ(second.matrix.get(), first.matrix.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FactorCache, DistinctKeysBuildDistinctEntries) {
  FactorCache cache;
  const auto a = cache.get_or_create("a", [] { return build_entry(4); });
  const auto b = cache.get_or_create("b", [] { return build_entry(5); });
  EXPECT_NE(a.factor.get(), b.factor.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(FactorCache, SingleFlightUnderContention) {
  // Many threads race on one absent key: exactly one builder run, everyone
  // gets the same entry — num_factorizations stays deterministic.
  FactorCache cache;
  std::atomic<int> builds{0};
  std::atomic<int> built_flags{0};
  constexpr int kThreads = 8;
  std::vector<const SparseCholesky*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool built = false;
      const auto entry = cache.get_or_create(
          "shared",
          [&] {
            builds.fetch_add(1);
            return build_entry(10);
          },
          &built);
      if (built) built_flags.fetch_add(1);
      seen[static_cast<std::size_t>(t)] = entry.factor.get();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(built_flags.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
}

TEST(FactorCache, ThrowingBuilderClearsSlotForRetry) {
  FactorCache cache;
  EXPECT_THROW(cache.get_or_create("k",
                                   []() -> FactorCache::Entry {
                                     throw std::runtime_error("assembly failed");
                                   }),
               std::runtime_error);
  EXPECT_FALSE(cache.contains("k"));
  // The failed build left no slot behind; the next caller builds cleanly.
  bool built = false;
  const auto entry = cache.get_or_create("k", [] { return build_entry(4); }, &built);
  EXPECT_TRUE(built);
  EXPECT_NE(entry.factor, nullptr);
  EXPECT_TRUE(cache.contains("k"));
}

TEST(FactorCache, WaitersRetryAfterBuilderFailure) {
  // Contention on one key whose FIRST builder invocation throws: the failed
  // claimant must erase its pending slot (not poison it), the waiters race
  // to claim the retry, exactly one rebuilds, and everyone else shares the
  // rebuilt entry. This is the protocol cancelled/faulted sweep queries
  // lean on — a thrown builder never wedges later scenarios.
  FactorCache cache;
  std::atomic<int> attempts{0};
  std::atomic<int> exceptions{0};
  std::atomic<int> successes{0};
  constexpr int kThreads = 8;
  std::vector<const SparseCholesky*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        const auto entry = cache.get_or_create("shared", [&] {
          if (attempts.fetch_add(1) == 0) throw std::runtime_error("injected build failure");
          return build_entry(8);
        });
        successes.fetch_add(1);
        seen[static_cast<std::size_t>(t)] = entry.factor.get();
      } catch (const std::runtime_error&) {
        exceptions.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Exactly one thread saw the failure; every other got the one rebuilt
  // factor. Two claims total (failed + retry), the rest were hits.
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(exceptions.load(), 1);
  EXPECT_EQ(successes.load(), kThreads - 1);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 2));
  EXPECT_EQ(cache.size(), 1u);
  const SparseCholesky* shared = nullptr;
  for (const SparseCholesky* factor : seen) {
    if (factor == nullptr) continue;
    if (shared == nullptr) shared = factor;
    EXPECT_EQ(factor, shared);
  }
  EXPECT_NE(shared, nullptr);
}

TEST(FactorCache, ClearDropsEntriesButCallersKeepTheirs) {
  FactorCache cache;
  const auto entry = cache.get_or_create("k", [] { return build_entry(4); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains("k"));
  EXPECT_NE(entry.factor, nullptr);  // shared_ptr keeps the factor alive
  const Vec rhs(static_cast<std::size_t>(entry.matrix->rows()), 1.0);
  const Vec x = entry.factor->solve(rhs);
  EXPECT_EQ(x.size(), rhs.size());
}

}  // namespace
}  // namespace ms::la
