#include "la/cg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/cholesky.hpp"

namespace ms::la {
namespace {

CsrMatrix laplacian_2d(idx_t m) {
  const idx_t n = m * m;
  TripletList t(n, n);
  for (idx_t j = 0; j < m; ++j) {
    for (idx_t i = 0; i < m; ++i) {
      const idx_t u = j * m + i;
      t.add(u, u, 4.0);
      if (i > 0) t.add(u, u - 1, -1.0);
      if (i + 1 < m) t.add(u, u + 1, -1.0);
      if (j > 0) t.add(u, u - m, -1.0);
      if (j + 1 < m) t.add(u, u + m, -1.0);
    }
  }
  return CsrMatrix::from_triplets(t);
}

Vec smooth_rhs(idx_t n) {
  Vec b(n);
  for (idx_t i = 0; i < n; ++i) b[i] = std::sin(0.3 * i);
  return b;
}

struct PrecondCase {
  const char* name;
};

class CgWithPreconditioners : public ::testing::TestWithParam<const char*> {};

TEST_P(CgWithPreconditioners, MatchesDirectSolve) {
  const CsrMatrix a = laplacian_2d(12);
  const Vec b = smooth_rhs(a.rows());
  const Vec x_direct = SparseCholesky(a).solve(b);

  auto precond = make_preconditioner(GetParam(), a);
  Vec x;
  IterativeOptions options;
  options.rel_tol = 1e-12;
  const IterativeResult result = conjugate_gradient(a, b, x, precond.get(), options);
  EXPECT_TRUE(result.converged) << GetParam();
  EXPECT_LT(max_abs_diff(x, x_direct), 1e-8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Preconds, CgWithPreconditioners,
                         ::testing::Values("none", "jacobi", "ssor"));

TEST(Cg, PreconditioningReducesIterations) {
  const CsrMatrix a = laplacian_2d(20);
  const Vec b = smooth_rhs(a.rows());
  IterativeOptions options;
  options.rel_tol = 1e-10;

  Vec x1, x2;
  const IterativeResult plain = conjugate_gradient(a, b, x1, nullptr, options);
  auto ssor = make_preconditioner("ssor", a);
  const IterativeResult pre = conjugate_gradient(a, b, x2, ssor.get(), options);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  const CsrMatrix a = laplacian_2d(4);
  Vec x;
  const IterativeResult result = conjugate_gradient(a, Vec(a.rows(), 0.0), x, nullptr, {});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

TEST(Cg, InitialGuessIsUsed) {
  const CsrMatrix a = laplacian_2d(8);
  const Vec b = smooth_rhs(a.rows());
  Vec x_exact = SparseCholesky(a).solve(b);

  IterativeOptions options;
  options.rel_tol = 1e-10;
  options.use_initial_guess = true;
  Vec x = x_exact;  // start at the solution: should converge instantly
  const IterativeResult result = conjugate_gradient(a, b, x, nullptr, options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(Cg, IterationCapReported) {
  const CsrMatrix a = laplacian_2d(16);
  const Vec b = smooth_rhs(a.rows());
  IterativeOptions options;
  options.rel_tol = 1e-14;
  options.max_iterations = 3;
  Vec x;
  const IterativeResult result = conjugate_gradient(a, b, x, nullptr, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_GT(result.residual_norm, 0.0);
}

TEST(Cg, MatrixFreeVariantAgrees) {
  const CsrMatrix a = laplacian_2d(6);
  const Vec b = smooth_rhs(a.rows());
  IterativeOptions options;
  options.rel_tol = 1e-12;
  Vec x1, x2;
  conjugate_gradient(a, b, x1, nullptr, options);
  conjugate_gradient([&a](const Vec& in, Vec& out) { a.mul(in, out); }, b, x2, nullptr, options);
  EXPECT_LT(max_abs_diff(x1, x2), 1e-13);
}

}  // namespace
}  // namespace ms::la
