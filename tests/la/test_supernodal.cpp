// Supernodal back end against the matrices the production solve paths
// actually factor: the TSV unit-block interior (local stage) and the coarse
// package stiffness (scenario 2). The simplicial up-looking factorization is
// the reference.

#include "la/supernodal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "chiplet/package_model.hpp"
#include "fem/assembler.hpp"
#include "fem/dirichlet.hpp"
#include "la/cholesky.hpp"
#include "mesh/tsv_block.hpp"

namespace ms::la {
namespace {

/// Interior (free-dof) stiffness of a TSV unit block — the matrix the local
/// stage factors once and reuses for the n+1 basis solves.
CsrMatrix tsv_block_matrix() {
  const mesh::TsvGeometry geometry{15.0, 5.0, 0.5, 50.0};
  const mesh::BlockMeshSpec spec{8, 6};
  const mesh::HexMesh block = mesh::build_tsv_block_mesh(geometry, spec);
  const fem::AssembledSystem sys = fem::assemble_system(block, fem::MaterialTable::standard());
  std::vector<idx_t> bc_dofs;
  for (idx_t node : block.boundary_nodes()) {
    for (int c = 0; c < 3; ++c) bc_dofs.push_back(3 * node + c);
  }
  const fem::DofPartition part = fem::partition_dofs(sys.num_dofs, bc_dofs);
  return sys.stiffness.submatrix(part.free_map, part.num_free, part.free_map, part.num_free);
}

/// Clamped coarse package stiffness — the scenario-2 direct solve (shrunk
/// mesh so the test stays fast; same structure as the production matrix).
CsrMatrix package_matrix() {
  const chiplet::PackageGeometry geometry = chiplet::demo_package_geometry(15.0, 6, 50.0);
  const chiplet::CoarseMeshSpec spec{10, 10, 2, 2, 2};
  const mesh::HexMesh mesh = chiplet::build_package_coarse_mesh(geometry, spec);
  fem::AssembledSystem sys = fem::assemble_system(mesh, chiplet::package_materials());
  std::vector<idx_t> bottom;
  for (idx_t id = 0; id < mesh.nodes_x() * mesh.nodes_y(); ++id) bottom.push_back(id);
  Vec rhs(sys.num_dofs, 0.0);
  fem::apply_dirichlet(sys.stiffness, rhs, fem::DirichletBc::clamp_nodes(bottom));
  return sys.stiffness;
}

SparseCholesky::Options with_method(SparseCholesky::Method method) {
  SparseCholesky::Options o;
  o.method = method;
  return o;
}

void expect_factors_match(const CsrMatrix& a, double tol) {
  const SparseCholesky sn(a, with_method(SparseCholesky::Method::kSupernodal));
  const SparseCholesky si(a, with_method(SparseCholesky::Method::kSimplicial));
  ASSERT_EQ(sn.factor_nnz(), si.factor_nnz());
  std::vector<offset_t> cp_sn, cp_si;
  std::vector<idx_t> ri_sn, ri_si;
  std::vector<double> v_sn, v_si;
  sn.extract_factor(cp_sn, ri_sn, v_sn);
  si.extract_factor(cp_si, ri_si, v_si);
  ASSERT_EQ(cp_sn, cp_si);
  ASSERT_EQ(ri_sn, ri_si);
  double max_l = 0.0, max_diff = 0.0;
  for (std::size_t k = 0; k < v_si.size(); ++k) {
    max_l = std::max(max_l, std::abs(v_si[k]));
    max_diff = std::max(max_diff, std::abs(v_sn[k] - v_si[k]));
  }
  EXPECT_LT(max_diff / max_l, tol) << "relative factor mismatch";
}

void expect_valid_supernode_partition(const SupernodalFactor& f) {
  ASSERT_GT(f.num_supernodes, 0);
  ASSERT_EQ(f.super_start.front(), 0);
  ASSERT_EQ(f.super_start.back(), f.n);
  for (idx_t s = 0; s < f.num_supernodes; ++s) {
    const idx_t c0 = f.super_start[s];
    const idx_t c1 = f.super_start[static_cast<std::size_t>(s) + 1];
    ASSERT_LT(c0, c1);
    const offset_t m = f.row_start[static_cast<std::size_t>(s) + 1] - f.row_start[s];
    ASSERT_GE(m, c1 - c0);
    // Own columns lead the pattern; the rest ascends strictly.
    for (idx_t j = c0; j < c1; ++j) {
      ASSERT_EQ(f.rows[f.row_start[s] + (j - c0)], j);
      ASSERT_EQ(f.col_super[j], s);
    }
    for (offset_t q = f.row_start[s] + 1; q < f.row_start[static_cast<std::size_t>(s) + 1]; ++q) {
      ASSERT_LT(f.rows[q - 1], f.rows[q]);
    }
  }
}

TEST(Supernodal, TsvBlockFactorMatchesSimplicial) {
  expect_factors_match(tsv_block_matrix(), 1e-12);
}

TEST(Supernodal, PackageFactorMatchesSimplicial) {
  expect_factors_match(package_matrix(), 1e-12);
}

TEST(Supernodal, PartitionIsValidAndGroupsFemColumns) {
  const CsrMatrix a = tsv_block_matrix();
  const std::vector<idx_t> parent = elimination_tree(a);
  const std::vector<idx_t> counts = cholesky_column_counts(a, parent);
  const SupernodalFactor f = analyze_supernodes(a, parent, counts, 48);
  expect_valid_supernode_partition(f);
  // 3 dofs per node share structure, so panels must actually group columns.
  EXPECT_LT(4 * f.num_supernodes, 3 * f.n);
}

TEST(Supernodal, WidthCapIsHonored) {
  const CsrMatrix a = tsv_block_matrix();
  const std::vector<idx_t> parent = elimination_tree(a);
  const std::vector<idx_t> counts = cholesky_column_counts(a, parent);
  for (const idx_t cap : {1, 4, 16}) {
    const SupernodalFactor f = analyze_supernodes(a, parent, counts, cap);
    expect_valid_supernode_partition(f);
    for (idx_t s = 0; s < f.num_supernodes; ++s) {
      ASSERT_LE(f.super_start[static_cast<std::size_t>(s) + 1] - f.super_start[s], cap);
    }
    if (cap == 1) EXPECT_EQ(f.num_supernodes, f.n);
  }
}

TEST(Supernodal, SolvesProduceTinyResidualsOnProductionMatrices) {
  for (const CsrMatrix& a : {tsv_block_matrix(), package_matrix()}) {
    const idx_t n = a.rows();
    const SparseCholesky chol(a);  // AMD + supernodal default
    Vec b(n);
    for (idx_t i = 0; i < n; ++i) b[i] = std::sin(0.03 * i) + 0.4;
    const Vec x = chol.solve(b);
    Vec ax;
    a.mul(x, ax);
    double scale = 0.0, err = 0.0;
    for (idx_t i = 0; i < n; ++i) {
      scale = std::max(scale, std::abs(b[i]));
      err = std::max(err, std::abs(ax[i] - b[i]));
    }
    EXPECT_LT(err / scale, 1e-9) << "n = " << n;
  }
}

TEST(Supernodal, MultiRhsPanelMatchesSingleSolvesOnBlockMatrix) {
  const CsrMatrix a = tsv_block_matrix();
  const idx_t n = a.rows();
  const idx_t nrhs = 8;
  const SparseCholesky chol(a);
  Vec panel(static_cast<std::size_t>(n) * nrhs);
  for (idx_t r = 0; r < nrhs; ++r) {
    for (idx_t i = 0; i < n; ++i) {
      panel[static_cast<std::size_t>(r) * n + i] = std::sin(0.011 * i * (r + 1));
    }
  }
  const Vec x_panel = chol.solve_multi(panel, nrhs);
  Vec x, work;
  for (idx_t r = 0; r < nrhs; ++r) {
    const Vec b(panel.begin() + static_cast<std::size_t>(r) * n,
                panel.begin() + static_cast<std::size_t>(r + 1) * n);
    chol.solve_with(b, x, work);
    for (idx_t i = 0; i < n; ++i) {
      ASSERT_EQ(x_panel[static_cast<std::size_t>(r) * n + i], x[i]) << "rhs " << r;
    }
  }
}

TEST(Supernodal, SyrkKernelMatchesNaiveProduct) {
  const idx_t ni = 13, nj = 6, k = 9, lda = 17, ldc = 15;
  std::vector<double> a(static_cast<std::size_t>(lda) * k);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::sin(0.37 * static_cast<double>(i));
  std::vector<double> c(static_cast<std::size_t>(ldc) * nj, -99.0);
  syrk_panel_lower(a.data(), lda, ni, nj, k, c.data(), ldc);
  for (idx_t j = 0; j < nj; ++j) {
    for (idx_t i = j; i < ni; ++i) {  // the consumed trapezoid
      double ref = 0.0;
      for (idx_t t = 0; t < k; ++t) {
        ref += a[static_cast<std::size_t>(t) * lda + i] * a[static_cast<std::size_t>(t) * lda + j];
      }
      EXPECT_NEAR(c[static_cast<std::size_t>(j) * ldc + i], ref, 1e-13 * (1.0 + std::abs(ref)))
          << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(Supernodal, EtreePostorderIsValidPermutation) {
  const CsrMatrix a = package_matrix();
  const std::vector<idx_t> parent = elimination_tree(a);
  const std::vector<idx_t> post = etree_postorder(parent);
  ASSERT_EQ(post.size(), static_cast<std::size_t>(a.rows()));
  std::vector<char> seen(a.rows(), 0);
  std::vector<idx_t> position(a.rows(), 0);
  for (idx_t i = 0; i < a.rows(); ++i) {
    ASSERT_FALSE(seen[post[i]]);
    seen[post[i]] = 1;
    position[post[i]] = i;
  }
  // Children precede parents.
  for (idx_t v = 0; v < a.rows(); ++v) {
    if (parent[v] != -1) ASSERT_LT(position[v], position[parent[v]]);
  }
}

TEST(Supernodal, ParallelNumericMatchesSerialBitwise) {
  // The phased numeric factorization partitions the elimination tree with a
  // thread-count-independent weight target, so the OpenMP subtree pass must
  // reproduce the serial pass bit for bit — on the fundamental supernodes
  // and on amalgamated (padded) panels alike.
  for (const double relax : {0.0, 0.25}) {
    for (const CsrMatrix& a : {tsv_block_matrix(), package_matrix()}) {
      SparseCholesky::Options serial = with_method(SparseCholesky::Method::kSupernodal);
      serial.relax_supernodes = relax;
      serial.parallel_numeric = false;
      SparseCholesky::Options parallel = serial;
      parallel.parallel_numeric = true;
      const SparseCholesky cs(a, serial);
      const SparseCholesky cp(a, parallel);
      std::vector<offset_t> cp_s, cp_p;
      std::vector<idx_t> ri_s, ri_p;
      std::vector<double> v_s, v_p;
      cs.extract_factor(cp_s, ri_s, v_s);
      cp.extract_factor(cp_p, ri_p, v_p);
      ASSERT_EQ(cp_s, cp_p);
      ASSERT_EQ(ri_s, ri_p);
      ASSERT_EQ(v_s, v_p) << "relax = " << relax;
    }
  }
}

TEST(Supernodal, ParallelNumericStillThrowsOnIndefiniteMatrix) {
  // The subtree pass may not leak exceptions out of its OpenMP region; the
  // non-positive-pivot failure must still surface as the usual throw.
  const CsrMatrix a = tsv_block_matrix();
  TripletList t(a.rows(), a.cols());
  for (idx_t r = 0; r < a.rows(); ++r) {
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(r) + 1];
    for (offset_t p = a.row_ptr()[r]; p < end; ++p) {
      const idx_t c = a.col_idx()[p];
      t.add(r, c, r == c ? -a.values()[p] : a.values()[p]);  // flip the diagonal
    }
  }
  const CsrMatrix indefinite = CsrMatrix::from_triplets(t);
  SparseCholesky::Options options;  // AMD + supernodal + parallel defaults
  options.parallel_numeric = true;
  EXPECT_THROW(SparseCholesky(indefinite, options), std::runtime_error);
}

/// Scatter an extract_factor CSC export into a dense lower triangle.
std::vector<double> densify_factor(const SparseCholesky& chol, idx_t n) {
  std::vector<offset_t> cp;
  std::vector<idx_t> ri;
  std::vector<double> v;
  chol.extract_factor(cp, ri, v);
  std::vector<double> dense(static_cast<std::size_t>(n) * n, 0.0);
  for (idx_t j = 0; j < n; ++j) {
    for (offset_t p = cp[j]; p < cp[static_cast<std::size_t>(j) + 1]; ++p) {
      dense[static_cast<std::size_t>(j) * n + ri[p]] = v[p];
    }
  }
  return dense;
}

TEST(Amalgamation, RelaxedFactorLocksToSimplicialAt1em12) {
  // The padded entries of an amalgamated panel are *structural* zeros: every
  // term of their elimination is outside the fill pattern, so the relaxed
  // factor must equal the simplicial factor entry for entry (padding
  // included, as exact zeros) under the same AMD + postorder permutation.
  const CsrMatrix a = tsv_block_matrix();
  const idx_t n = a.rows();
  SparseCholesky::Options relaxed = with_method(SparseCholesky::Method::kSupernodal);
  relaxed.relax_supernodes = 0.25;
  const SparseCholesky sn(a, relaxed);
  const SparseCholesky si(a, with_method(SparseCholesky::Method::kSimplicial));

  const std::vector<double> dense_sn = densify_factor(sn, n);
  const std::vector<double> dense_si = densify_factor(si, n);
  double max_l = 0.0, max_diff = 0.0;
  for (std::size_t k = 0; k < dense_si.size(); ++k) {
    max_l = std::max(max_l, std::abs(dense_si[k]));
    max_diff = std::max(max_diff, std::abs(dense_sn[k] - dense_si[k]));
  }
  ASSERT_GT(max_l, 0.0);
  EXPECT_LT(max_diff / max_l, 1e-12) << "relative factor mismatch";
}

TEST(Amalgamation, MergesPanelsUnderTheFillGrowthCap) {
  const CsrMatrix a = tsv_block_matrix();
  const std::vector<idx_t> parent = elimination_tree(a);
  const std::vector<idx_t> counts = cholesky_column_counts(a, parent);
  const SupernodalFactor fundamental = analyze_supernodes(a, parent, counts, 48);
  const SupernodalFactor relaxed = analyze_supernodes(a, parent, counts, 48, 0.25);
  expect_valid_supernode_partition(relaxed);

  // Amalgamation must actually merge (fewer, wider panels) without ever
  // exceeding the width cap ...
  EXPECT_LT(relaxed.num_supernodes, fundamental.num_supernodes);
  for (idx_t s = 0; s < relaxed.num_supernodes; ++s) {
    ASSERT_LE(relaxed.super_start[static_cast<std::size_t>(s) + 1] - relaxed.super_start[s], 48);
  }
  // ... while the padding stays within the global consequence of the
  // per-merge cap: padded trapezoids within 25% of the true nonzeros.
  ASSERT_GE(relaxed.factor_nnz(), fundamental.factor_nnz());
  EXPECT_LT(static_cast<double>(relaxed.factor_nnz()),
            1.25 * static_cast<double>(fundamental.factor_nnz()));
}

TEST(Amalgamation, HonorsWidthCapAndSolvesAccurately) {
  const CsrMatrix a = package_matrix();
  const idx_t n = a.rows();
  SparseCholesky::Options options;  // AMD + supernodal defaults
  options.max_supernode_width = 24;
  options.relax_supernodes = 0.3;
  const SparseCholesky chol(a, options);
  EXPECT_GT(chol.num_supernodes(), 0);

  SparseCholesky::Options plain = options;
  plain.relax_supernodes = 0.0;
  const SparseCholesky reference(a, plain);
  EXPECT_LT(chol.num_supernodes(), reference.num_supernodes());

  Vec b(n);
  for (idx_t i = 0; i < n; ++i) b[i] = std::cos(0.02 * i) + 0.7;
  const Vec x = chol.solve(b);
  Vec ax;
  a.mul(x, ax);
  double scale = 0.0, err = 0.0;
  for (idx_t i = 0; i < n; ++i) {
    scale = std::max(scale, std::abs(b[i]));
    err = std::max(err, std::abs(ax[i] - b[i]));
  }
  EXPECT_LT(err / scale, 1e-9);
}

}  // namespace
}  // namespace ms::la
