#include "mesh/tsv_block.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::mesh {
namespace {

TsvGeometry paper_geometry() { return {15.0, 5.0, 0.5, 50.0}; }

TEST(TsvGeometry, DerivedRadii) {
  const TsvGeometry g = paper_geometry();
  EXPECT_DOUBLE_EQ(g.copper_radius(), 2.5);
  EXPECT_DOUBLE_EQ(g.liner_radius(), 3.0);
  EXPECT_NO_THROW(g.validate());
}

TEST(TsvGeometry, ValidationCatchesBadShapes) {
  TsvGeometry g = paper_geometry();
  g.pitch = 5.0;  // via + liner (6 um) no longer fits
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = paper_geometry();
  g.height = -1.0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(BlockGridLines, InterfaceConforming) {
  const TsvGeometry g = paper_geometry();
  const BlockGridLines lines = block_grid_lines(g, {8, 5});
  const double c = 7.5;
  for (double r : {g.copper_radius(), g.liner_radius()}) {
    for (double sign : {-1.0, 1.0}) {
      const double target = c + sign * r;
      bool found = false;
      for (double x : lines.xy) found = found || std::fabs(x - target) < 1e-9;
      EXPECT_TRUE(found) << "missing grid line at " << target;
    }
  }
  EXPECT_EQ(lines.z.size(), 6u);
}

TEST(TsvBlockMesh, MaterialVolumesApproximateCylinders) {
  const TsvGeometry g = paper_geometry();
  const HexMesh m = build_tsv_block_mesh(g, {16, 6});
  double v_cu = 0.0, v_liner = 0.0, v_si = 0.0;
  for (idx_t e = 0; e < m.num_elems(); ++e) {
    const double v = m.elem_volume(e);
    switch (m.material(e)) {
      case MaterialId::Copper: v_cu += v; break;
      case MaterialId::Liner: v_liner += v; break;
      default: v_si += v; break;
    }
  }
  const double pi = 3.14159265358979;
  const double v_cu_exact = pi * 2.5 * 2.5 * 50.0;
  const double v_liner_exact = pi * (3.0 * 3.0 - 2.5 * 2.5) * 50.0;
  EXPECT_NEAR(v_cu / v_cu_exact, 1.0, 0.15);
  EXPECT_NEAR(v_liner / v_liner_exact, 1.0, 0.35);  // thin annulus, coarser
  EXPECT_NEAR(v_cu + v_liner + v_si, 15.0 * 15.0 * 50.0, 1e-9);
}

TEST(TsvBlockMesh, MaterialConstantThroughHeight) {
  const HexMesh m = build_tsv_block_mesh(paper_geometry(), {10, 4});
  for (idx_t j = 0; j < m.elems_y(); ++j) {
    for (idx_t i = 0; i < m.elems_x(); ++i) {
      const MaterialId top = m.material(m.elem_id(i, j, 0));
      for (idx_t k = 1; k < m.elems_z(); ++k) {
        EXPECT_EQ(m.material(m.elem_id(i, j, k)), top);
      }
    }
  }
}

TEST(DummyBlockMesh, AllSiliconSameGrid) {
  const TsvGeometry g = paper_geometry();
  const HexMesh tsv = build_tsv_block_mesh(g, {10, 4});
  const HexMesh dummy = build_dummy_block_mesh(g, {10, 4});
  EXPECT_EQ(tsv.num_nodes(), dummy.num_nodes());
  EXPECT_EQ(tsv.xs(), dummy.xs());
  for (idx_t e = 0; e < dummy.num_elems(); ++e) {
    EXPECT_EQ(dummy.material(e), MaterialId::Silicon);
  }
}

TEST(ArrayMesh, TilesBlocksExactly) {
  const TsvGeometry g = paper_geometry();
  const HexMesh block = build_tsv_block_mesh(g, {8, 4});
  const HexMesh array = build_array_mesh(g, {8, 4}, 3, 2);
  EXPECT_EQ(array.elems_x(), 3 * block.elems_x());
  EXPECT_EQ(array.elems_y(), 2 * block.elems_y());
  EXPECT_EQ(array.elems_z(), block.elems_z());
  EXPECT_NEAR(array.xs().back(), 45.0, 1e-9);
  EXPECT_NEAR(array.ys().back(), 30.0, 1e-9);

  // Per-block material pattern replicates the unit block.
  const idx_t epb = block.elems_x();
  for (int bx = 0; bx < 3; ++bx) {
    for (idx_t j = 0; j < block.elems_y(); ++j) {
      for (idx_t i = 0; i < epb; ++i) {
        EXPECT_EQ(array.material(array.elem_id(bx * epb + i, j, 0)),
                  block.material(block.elem_id(i, j, 0)));
      }
    }
  }
}

TEST(ArrayMesh, MaskControlsViaPlacement) {
  const TsvGeometry g = paper_geometry();
  const HexMesh array = build_array_mesh(g, {8, 4}, 3, 3, single_tsv_mask(3, 3));
  // Only the centre block may contain copper.
  const idx_t epb = array.elems_x() / 3;
  for (idx_t e = 0; e < array.num_elems(); ++e) {
    if (array.material(e) != MaterialId::Copper) continue;
    const auto [i, j, k] = array.elem_ijk(e);
    EXPECT_GE(i, epb);
    EXPECT_LT(i, 2 * epb);
    EXPECT_GE(j, epb);
    EXPECT_LT(j, 2 * epb);
  }
}

TEST(Masks, FullPaddedSingleShapes) {
  EXPECT_EQ(full_tsv_mask(3, 2), (std::vector<std::uint8_t>{1, 1, 1, 1, 1, 1}));
  const auto padded = padded_tsv_mask(4, 4, 1);
  int count = 0;
  for (auto v : padded) count += v;
  EXPECT_EQ(count, 4);  // inner 2x2
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[5], 1);
  EXPECT_THROW(padded_tsv_mask(4, 4, 2), std::invalid_argument);
  EXPECT_THROW(single_tsv_mask(4, 3), std::invalid_argument);
  const auto single = single_tsv_mask(3, 3);
  EXPECT_EQ(single[4], 1);
}

TEST(ArrayMesh, RejectsBadMaskSize) {
  const TsvGeometry g = paper_geometry();
  EXPECT_THROW(build_array_mesh(g, {8, 4}, 2, 2, {1, 1, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace ms::mesh
