#include "mesh/grading.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace ms::mesh {
namespace {

bool strictly_increasing(const std::vector<double>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

TEST(UniformCoords, EndpointsExactAndEvenSpacing) {
  const auto c = uniform_coords(0.0, 10.0, 4);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_DOUBLE_EQ(c.front(), 0.0);
  EXPECT_DOUBLE_EQ(c.back(), 10.0);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_NEAR(c[i] - c[i - 1], 2.5, 1e-12);
}

TEST(UniformCoords, RejectsBadInput) {
  EXPECT_THROW(uniform_coords(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(uniform_coords(1.0, 0.0, 3), std::invalid_argument);
}

TEST(GradedCoords, ContainsEveryInteriorInterface) {
  const std::vector<double> interfaces{4.5, 5.0, 10.0, 10.5};
  const auto c = graded_coords(0.0, 15.0, 8, interfaces);
  EXPECT_TRUE(strictly_increasing(c));
  for (double v : interfaces) {
    EXPECT_TRUE(std::any_of(c.begin(), c.end(), [&](double x) { return std::fabs(x - v) < 1e-12; }))
        << "missing interface " << v;
  }
}

TEST(GradedCoords, RespectsMaxSpacing) {
  const auto c = graded_coords(0.0, 15.0, 10, {4.5, 5.0, 10.0, 10.5});
  const double max_h = 1.5;
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LE(c[i] - c[i - 1], max_h + 1e-12);
}

TEST(GradedCoords, IgnoresOutOfRangeInterfaces) {
  const auto c = graded_coords(0.0, 1.0, 2, {-5.0, 0.0, 1.0, 7.0});
  EXPECT_TRUE(strictly_increasing(c));
  EXPECT_DOUBLE_EQ(c.front(), 0.0);
  EXPECT_DOUBLE_EQ(c.back(), 1.0);
}

TEST(GradedCoords, MergesNearCoincidentInterfaces) {
  const auto c = graded_coords(0.0, 1.0, 2, {0.5, 0.5 + 1e-12});
  EXPECT_TRUE(strictly_increasing(c));
}

TEST(GradedCoords, NoInterfacesReducesToUniform) {
  const auto graded = graded_coords(0.0, 6.0, 3, {});
  const auto uniform = uniform_coords(0.0, 6.0, 3);
  ASSERT_EQ(graded.size(), uniform.size());
  for (std::size_t i = 0; i < graded.size(); ++i) EXPECT_NEAR(graded[i], uniform[i], 1e-12);
}

TEST(TileCoords, SharedBoundariesAppearOnce) {
  const std::vector<double> block{0.0, 1.0, 3.0};
  const auto tiled = tile_coords(block, 3);
  const std::vector<double> expected{0.0, 1.0, 3.0, 4.0, 6.0, 7.0, 9.0};
  ASSERT_EQ(tiled.size(), expected.size());
  for (std::size_t i = 0; i < tiled.size(); ++i) EXPECT_NEAR(tiled[i], expected[i], 1e-12);
}

TEST(TileCoords, SingleTileIsIdentity) {
  const std::vector<double> block{0.0, 0.5, 2.0};
  EXPECT_EQ(tile_coords(block, 1), block);
}

TEST(TileCoords, RejectsBadInput) {
  EXPECT_THROW(tile_coords({0.0}, 2), std::invalid_argument);
  EXPECT_THROW(tile_coords({0.0, 1.0}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ms::mesh
