#include "mesh/hex_mesh.hpp"

#include <gtest/gtest.h>

#include "mesh/grading.hpp"

namespace ms::mesh {
namespace {

HexMesh unit_cube(int n) {
  const auto c = uniform_coords(0.0, 1.0, n);
  return HexMesh(c, c, c);
}

TEST(HexMesh, SizesAndIds) {
  const HexMesh m = unit_cube(3);
  EXPECT_EQ(m.num_nodes(), 64);
  EXPECT_EQ(m.num_elems(), 27);
  EXPECT_EQ(m.node_id(0, 0, 0), 0);
  EXPECT_EQ(m.node_id(3, 3, 3), 63);
  const auto ijk = m.node_ijk(m.node_id(1, 2, 3));
  EXPECT_EQ(ijk[0], 1);
  EXPECT_EQ(ijk[1], 2);
  EXPECT_EQ(ijk[2], 3);
}

TEST(HexMesh, NodePositions) {
  const HexMesh m = unit_cube(2);
  const Point3 p = m.node_pos(m.node_id(1, 2, 0));
  EXPECT_DOUBLE_EQ(p.x, 0.5);
  EXPECT_DOUBLE_EQ(p.y, 1.0);
  EXPECT_DOUBLE_EQ(p.z, 0.0);
}

TEST(HexMesh, ElemNodesFollowHex8Convention) {
  const HexMesh m = unit_cube(2);
  const auto nodes = m.elem_nodes(m.elem_id(0, 0, 0));
  // Corner 0 at (0,0,0); corner 6 diagonally opposite at (1,1,1).
  EXPECT_EQ(nodes[0], m.node_id(0, 0, 0));
  EXPECT_EQ(nodes[1], m.node_id(1, 0, 0));
  EXPECT_EQ(nodes[2], m.node_id(1, 1, 0));
  EXPECT_EQ(nodes[3], m.node_id(0, 1, 0));
  EXPECT_EQ(nodes[6], m.node_id(1, 1, 1));
}

TEST(HexMesh, ElemGeometry) {
  const HexMesh m(uniform_coords(0.0, 2.0, 2), uniform_coords(0.0, 3.0, 3),
                  uniform_coords(0.0, 4.0, 4));
  const idx_t e = m.elem_id(1, 2, 3);
  const Point3 c = m.elem_centroid(e);
  EXPECT_DOUBLE_EQ(c.x, 1.5);
  EXPECT_DOUBLE_EQ(c.y, 2.5);
  EXPECT_DOUBLE_EQ(c.z, 3.5);
  EXPECT_DOUBLE_EQ(m.elem_volume(e), 1.0);
  double total = 0.0;
  for (idx_t i = 0; i < m.num_elems(); ++i) total += m.elem_volume(i);
  EXPECT_NEAR(total, 24.0, 1e-12);
}

TEST(HexMesh, MaterialsDefaultSiliconAndSettable) {
  HexMesh m = unit_cube(2);
  EXPECT_EQ(m.material(0), MaterialId::Silicon);
  m.set_material(3, MaterialId::Copper);
  EXPECT_EQ(m.material(3), MaterialId::Copper);
}

TEST(HexMesh, BoundaryNodeDetection) {
  const HexMesh m = unit_cube(4);
  idx_t boundary_count = 0;
  for (idx_t id = 0; id < m.num_nodes(); ++id) {
    if (m.is_boundary_node(id)) ++boundary_count;
  }
  // 5^3 grid: surface nodes = 125 - 27 interior.
  EXPECT_EQ(boundary_count, 98);
  EXPECT_EQ(static_cast<idx_t>(m.boundary_nodes().size()), 98);
}

TEST(HexMesh, TopBottomNodes) {
  const HexMesh m = unit_cube(3);
  const auto tb = m.top_bottom_nodes();
  EXPECT_EQ(tb.size(), 32u);  // two 4x4 layers
  for (idx_t id : tb) {
    EXPECT_TRUE(m.on_face_zmin(id) || m.on_face_zmax(id));
  }
}

TEST(HexMesh, LocateReturnsContainingElement) {
  const HexMesh m = unit_cube(4);
  const auto loc = m.locate({0.3, 0.6, 0.9});
  const Point3 lo = m.elem_min(loc.elem);
  const Point3 hi = m.elem_max(loc.elem);
  EXPECT_LE(lo.x, 0.3);
  EXPECT_GE(hi.x, 0.3);
  EXPECT_LE(lo.y, 0.6);
  EXPECT_GE(hi.y, 0.6);
  EXPECT_GE(loc.xi, -1.0);
  EXPECT_LE(loc.xi, 1.0);
  EXPECT_GE(loc.zeta, -1.0);
  EXPECT_LE(loc.zeta, 1.0);
}

TEST(HexMesh, LocateClampsOutsidePoints) {
  const HexMesh m = unit_cube(2);
  const auto lo = m.locate({-5.0, 0.5, 0.5});
  EXPECT_EQ(m.elem_ijk(lo.elem)[0], 0);
  const auto hi = m.locate({5.0, 0.5, 0.5});
  EXPECT_EQ(m.elem_ijk(hi.elem)[0], m.elems_x() - 1);
}

TEST(HexMesh, RejectsBadCoordinates) {
  EXPECT_THROW(HexMesh({0.0}, {0.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(HexMesh({0.0, 0.0}, {0.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(HexMesh({1.0, 0.0}, {0.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ms::mesh
