// TSV-aware effective block conductivity: dummy blocks conduct like bulk
// silicon, every estimate respects the Voigt/Reuss bracket, and the active
// block comes out transversely isotropic (fast vertical via, liner-shielded
// in plane). Plus the orthotropic conduction element that consumes it.

#include <gtest/gtest.h>

#include <cmath>

#include "fem/material.hpp"
#include "mesh/tsv_block.hpp"
#include "thermal/conduction.hpp"
#include "thermal/conduction_assembler.hpp"

namespace ms::thermal {
namespace {

const mesh::TsvGeometry kGeometry{15.0, 5.0, 0.5, 50.0};
const fem::MaterialTable kMaterials = fem::MaterialTable::standard();

TEST(BlockConductivity, DummyBlockIsBulkSilicon) {
  const double k_si = kMaterials.at(mesh::MaterialId::Silicon).conductivity;
  const BlockConductivity k =
      block_conductivity(kGeometry, kMaterials, /*is_tsv=*/false, ConductivityModel::kTsvAware);
  EXPECT_DOUBLE_EQ(k.in_plane, k_si);
  EXPECT_DOUBLE_EQ(k.through_plane, k_si);
}

TEST(BlockConductivity, TsvBlockRespectsVoigtReussBounds) {
  const double voigt = effective_block_conductivity(kGeometry, kMaterials);
  const double reuss = reuss_block_conductivity(kGeometry, kMaterials);
  ASSERT_LT(reuss, voigt);  // phases differ, so the bracket is proper

  const BlockConductivity k =
      block_conductivity(kGeometry, kMaterials, /*is_tsv=*/true, ConductivityModel::kTsvAware);
  EXPECT_GE(k.in_plane, reuss);
  EXPECT_LE(k.in_plane, voigt);
  EXPECT_GE(k.through_plane, reuss);
  EXPECT_LE(k.through_plane, voigt);
  // The through-plane estimate IS the Voigt average (parallel vertical paths).
  EXPECT_DOUBLE_EQ(k.through_plane, voigt);
}

TEST(BlockConductivity, AnisotropyMatchesThePhysics) {
  const double k_si = kMaterials.at(mesh::MaterialId::Silicon).conductivity;
  const BlockConductivity k =
      block_conductivity(kGeometry, kMaterials, /*is_tsv=*/true, ConductivityModel::kTsvAware);
  // Copper helps vertically (k_cu > k_si) ...
  EXPECT_GT(k.through_plane, k_si);
  // ... but the low-k liner shields the via laterally.
  EXPECT_LT(k.in_plane, k_si);
  EXPECT_GT(k.through_plane / k.in_plane, 1.1);
}

TEST(BlockConductivity, ViaAveragedModelIsIsotropicVoigtForEveryBlock) {
  const double voigt = effective_block_conductivity(kGeometry, kMaterials);
  for (bool is_tsv : {true, false}) {
    const BlockConductivity k =
        block_conductivity(kGeometry, kMaterials, is_tsv, ConductivityModel::kViaAveraged);
    EXPECT_DOUBLE_EQ(k.in_plane, voigt);
    EXPECT_DOUBLE_EQ(k.through_plane, voigt);
  }
}

TEST(BlockConductivity, DegeneratesToMatrixWhenPhasesMatch) {
  // Equal phase conductivities: every mixing rule must return that value.
  fem::Material si = fem::silicon();
  fem::Material cu = fem::copper();
  fem::Material liner = fem::sio2_liner();
  cu.conductivity = si.conductivity;
  liner.conductivity = si.conductivity;
  const fem::MaterialTable table({si, cu, liner, fem::organic_substrate()});

  EXPECT_NEAR(effective_block_conductivity(kGeometry, table), si.conductivity, 1e-9);
  EXPECT_NEAR(reuss_block_conductivity(kGeometry, table), si.conductivity, 1e-9);
  EXPECT_NEAR(maxwell_garnett_in_plane_conductivity(kGeometry, table), si.conductivity, 1e-9);
}

TEST(BlockConductivity, MaxwellGarnettTracksLinerConductivity) {
  // A better-conducting liner must never reduce the in-plane estimate.
  fem::Material liner = fem::sio2_liner();
  const double base = maxwell_garnett_in_plane_conductivity(kGeometry, kMaterials);
  liner.conductivity = 50.0;
  const fem::MaterialTable improved(
      {fem::silicon(), fem::copper(), liner, fem::organic_substrate()});
  EXPECT_GT(maxwell_garnett_in_plane_conductivity(kGeometry, improved), base);
}

TEST(ConductionElement, OrthotropicMatchesIsotropicWhenAxesAgree) {
  const auto iso = hex8_conduction_stiffness(120.0, 3.0, 4.0, 5.0);
  const auto ortho = hex8_conduction_stiffness(120.0, 120.0, 120.0, 3.0, 4.0, 5.0);
  for (int i = 0; i < kCondDofs * kCondDofs; ++i) EXPECT_DOUBLE_EQ(ortho[i], iso[i]);
}

TEST(ConductionElement, OrthotropicRowsSumToZero) {
  // Constant temperature field carries no flux regardless of the tensor.
  const auto ke = hex8_conduction_stiffness(10.0, 80.0, 400.0, 3.0, 4.0, 5.0);
  for (int a = 0; a < kCondDofs; ++a) {
    double row = 0.0;
    for (int b = 0; b < kCondDofs; ++b) row += ke[a * kCondDofs + b];
    EXPECT_NEAR(row, 0.0, 1e-12);
  }
}

TEST(ConductionElement, AxisConductivityScalesItsOwnGradientTerm) {
  // A 1D z-gradient on a unit cube sees only kz: energy = sum_ab Ke[a][b]
  // T_a T_b with T = z must scale linearly in kz and ignore kx, ky.
  const auto energy_z = [](double kx, double ky, double kz) {
    const auto ke = hex8_conduction_stiffness(kx, ky, kz, 1.0, 1.0, 1.0);
    const double t[kCondDofs] = {0, 0, 0, 0, 1, 1, 1, 1};  // T = z on corners
    double e = 0.0;
    for (int a = 0; a < kCondDofs; ++a) {
      for (int b = 0; b < kCondDofs; ++b) e += ke[a * kCondDofs + b] * t[a] * t[b];
    }
    return e;
  };
  const double base = energy_z(100.0, 100.0, 50.0);
  EXPECT_NEAR(energy_z(1.0, 1.0, 50.0), base, 1e-12 * std::abs(base));
  EXPECT_NEAR(energy_z(100.0, 100.0, 100.0), 2.0 * base, 1e-9 * std::abs(base));
}

TEST(BlockConductivity, RejectsNonPositivePhaseConductivity) {
  fem::Material liner = fem::sio2_liner();
  liner.conductivity = 0.0;
  const fem::MaterialTable broken(
      {fem::silicon(), fem::copper(), liner, fem::organic_substrate()});
  EXPECT_THROW((void)block_conductivity(kGeometry, broken, true, ConductivityModel::kTsvAware),
               std::invalid_argument);
  EXPECT_THROW((void)hex8_conduction_stiffness(0.0, 1.0, 1.0, 1.0, 1.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ms::thermal
