#include "thermal/power_map.hpp"

#include <gtest/gtest.h>

namespace ms::thermal {
namespace {

TEST(PowerMap, UniformMapReportsTotalPowerAndDensity) {
  // 4 tiles of 1 W/mm^2 over 2mm x 2mm -> 4 W.
  const PowerMap map(2, 2, 2000.0, 2000.0, 1.0);
  EXPECT_TRUE(map.is_uniform());
  EXPECT_NEAR(map.total_power(), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(map.peak_density(), 1.0);
  EXPECT_DOUBLE_EQ(map.density_at(500.0, 500.0), 1.0);
}

TEST(PowerMap, DensityOutsideFootprintIsZero) {
  const PowerMap map(2, 2, 100.0, 100.0, 3.0);
  EXPECT_DOUBLE_EQ(map.density_at(-1.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(map.density_at(50.0, 101.0), 0.0);
  // Outer edge belongs to the last tile.
  EXPECT_DOUBLE_EQ(map.density_at(100.0, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(map.density_at(0.0, 0.0), 3.0);
}

TEST(PowerMap, SetTileChangesOnlyThatTile) {
  PowerMap map = PowerMap::per_block(3, 3, 15.0);
  map.set_tile(1, 2, 7.0);
  EXPECT_FALSE(map.is_uniform());
  EXPECT_DOUBLE_EQ(map.tile(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(map.tile(2, 1), 0.0);
  // Tile (1, 2) covers x in [15,30), y in [30,45).
  EXPECT_DOUBLE_EQ(map.density_at(20.0, 40.0), 7.0);
  EXPECT_DOUBLE_EQ(map.density_at(40.0, 20.0), 0.0);
}

TEST(PowerMap, GaussianHotspotPeaksAtCentreAndDecays) {
  PowerMap map = PowerMap::per_block(5, 5, 10.0);
  map.add_gaussian_hotspot(25.0, 25.0, 10.0, 100.0);
  const double centre = map.tile(2, 2);
  EXPECT_NEAR(centre, 100.0, 1e-9);  // tile centre coincides with the peak
  EXPECT_LT(map.tile(1, 2), centre);
  EXPECT_LT(map.tile(0, 2), map.tile(1, 2));
  EXPECT_LT(map.tile(0, 0), map.tile(1, 1));
  EXPECT_GT(map.tile(0, 0), 0.0);
}

TEST(PowerMap, RectIslandAddsInsideOnly) {
  PowerMap map = PowerMap::per_block(4, 4, 10.0, 1.0);
  map.add_rect(0.0, 0.0, 20.0, 20.0, 5.0);  // the lower-left 2x2 tiles
  EXPECT_DOUBLE_EQ(map.tile(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(map.tile(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(map.tile(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(map.tile(3, 0), 1.0);
}

TEST(PowerMap, RejectsBadArguments) {
  EXPECT_THROW(PowerMap(0, 1, 10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(PowerMap(1, 1, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(PowerMap(2, 2, 10.0, 10.0, std::vector<double>(3)), std::invalid_argument);
  PowerMap map(2, 2, 10.0, 10.0);
  EXPECT_THROW((void)map.tile(2, 0), std::out_of_range);
  EXPECT_THROW(map.set_tile(0, -1, 1.0), std::out_of_range);
  EXPECT_THROW(map.add_gaussian_hotspot(5.0, 5.0, 0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ms::thermal
