// PowerTrace: keyframe bookkeeping, piecewise-constant vs linear sampling,
// and the waveform generators (constant hold, square wave, migrating
// hotspot).

#include "thermal/power_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ms::thermal {
namespace {

PowerMap flat(double density) { return PowerMap(2, 2, 20.0, 20.0, density); }

TEST(PowerTrace, KeyframesMustBeStrictlyIncreasing) {
  PowerTrace trace;
  trace.add_keyframe(0.0, flat(1.0));
  EXPECT_THROW(trace.add_keyframe(0.0, flat(2.0)), std::invalid_argument);
  EXPECT_THROW(trace.add_keyframe(-1.0, flat(2.0)), std::invalid_argument);
  trace.add_keyframe(1.0, flat(2.0));
  EXPECT_EQ(trace.num_keyframes(), 2u);
  EXPECT_DOUBLE_EQ(trace.duration(), 1.0);
}

TEST(PowerTrace, LinearTracesRejectMismatchedTilings) {
  PowerTrace trace(PowerTrace::Interpolation::kLinear);
  trace.add_keyframe(0.0, flat(1.0));
  EXPECT_THROW(trace.add_keyframe(1.0, PowerMap(3, 3, 20.0, 20.0, 1.0)), std::invalid_argument);
  // Piecewise-constant traces may switch tiling freely.
  PowerTrace pwc;
  pwc.add_keyframe(0.0, flat(1.0));
  pwc.add_keyframe(1.0, PowerMap(3, 3, 20.0, 20.0, 1.0));
  EXPECT_EQ(pwc.num_keyframes(), 2u);
}

TEST(PowerTrace, PiecewiseConstantHoldsTheActiveKeyframe) {
  PowerTrace trace;
  trace.add_keyframe(0.0, flat(1.0));
  trace.add_keyframe(2.0, flat(5.0));
  EXPECT_DOUBLE_EQ(trace.at(-1.0).tile(0, 0), 1.0);  // clamped below
  EXPECT_DOUBLE_EQ(trace.at(0.0).tile(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(1.999).tile(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(2.0).tile(0, 0), 5.0);   // jump at the keyframe
  EXPECT_DOUBLE_EQ(trace.at(99.0).tile(0, 0), 5.0);  // clamped above
  const PowerTrace::Sample s = trace.sample(1.0);
  EXPECT_EQ(s.lo, s.hi);
  EXPECT_DOUBLE_EQ(s.weight, 0.0);
}

TEST(PowerTrace, LinearSamplingBlendsTileByTile) {
  PowerTrace trace(PowerTrace::Interpolation::kLinear);
  trace.add_keyframe(0.0, flat(1.0));
  trace.add_keyframe(4.0, flat(9.0));
  EXPECT_DOUBLE_EQ(trace.at(1.0).tile(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(trace.at(2.0).tile(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(trace.at(4.0).tile(0, 1), 9.0);
  const PowerTrace::Sample s = trace.sample(3.0);
  EXPECT_EQ(s.lo, 0u);
  EXPECT_EQ(s.hi, 1u);
  EXPECT_DOUBLE_EQ(s.weight, 0.75);
}

TEST(PowerTrace, ConstantGeneratorIsConstant) {
  const PowerTrace trace = PowerTrace::constant(flat(3.0), 0.5);
  EXPECT_TRUE(trace.is_constant());
  EXPECT_DOUBLE_EQ(trace.duration(), 0.5);
  EXPECT_DOUBLE_EQ(trace.at(0.2).tile(1, 0), 3.0);
  EXPECT_THROW(PowerTrace::constant(flat(3.0), 0.0), std::invalid_argument);
}

TEST(PowerTrace, SquareWaveAlternatesHighAndLow) {
  const PowerTrace trace = PowerTrace::square_wave(flat(1.0), flat(10.0), 1.0, 0.25, 3);
  EXPECT_FALSE(trace.is_constant());
  EXPECT_DOUBLE_EQ(trace.duration(), 3.0);
  // High during the first quarter of each period, low for the rest.
  EXPECT_DOUBLE_EQ(trace.at(0.1).tile(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(trace.at(0.3).tile(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(1.1).tile(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(trace.at(2.9).tile(0, 0), 1.0);
  EXPECT_THROW(PowerTrace::square_wave(flat(1.0), flat(2.0), 1.0, 1.5, 2),
               std::invalid_argument);
  EXPECT_THROW(PowerTrace::square_wave(flat(1.0), PowerMap(3, 3, 20.0, 20.0, 2.0), 1.0, 0.5, 2),
               std::invalid_argument);
}

TEST(PowerTrace, MigratingHotspotMovesThePeak) {
  const PowerMap background(8, 8, 80.0, 80.0, 1.0);
  // Path endpoints sit exactly on tile centres (x = 5 -> 65 along the row of
  // centres at y = 45), so the hottest tile is unambiguous at the keyframes
  // and at the midpoint.
  const PowerTrace trace =
      PowerTrace::migrating_hotspot(background, 5.0, 45.0, 65.0, 45.0, 8.0, 100.0, 1e-3, 4);
  EXPECT_EQ(trace.num_keyframes(), 5u);
  EXPECT_EQ(trace.interpolation(), PowerTrace::Interpolation::kLinear);
  const auto hottest_tx = [&](double t) {
    const PowerMap map = trace.at(t);
    int best = 0;
    double best_v = -1.0;
    for (int tx = 0; tx < map.tiles_x(); ++tx) {
      if (map.tile(tx, 4) > best_v) {
        best_v = map.tile(tx, 4);
        best = tx;
      }
    }
    return best;
  };
  EXPECT_EQ(hottest_tx(0.0), 0);
  EXPECT_EQ(hottest_tx(0.5e-3), 3);
  EXPECT_EQ(hottest_tx(1e-3), 6);
  // Away from the die edges the moving hotspot carries the same total power.
  EXPECT_NEAR(trace.at(0.25e-3).total_power(), trace.at(0.75e-3).total_power(),
              0.05 * trace.at(0.25e-3).total_power());
}

TEST(PowerTrace, SampleOnEmptyTraceThrows) {
  const PowerTrace trace;
  EXPECT_THROW((void)trace.sample(0.0), std::logic_error);
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
}

}  // namespace
}  // namespace ms::thermal
