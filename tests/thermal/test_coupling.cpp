// Conduction -> ROM coupling: power-map ΔT sanity on the array thermal
// mesh, and the regression pinning simulate_array_thermal with a uniform
// power map to the scalar-ΔT simulate_array path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/simulator.hpp"
#include "thermal/conduction_assembler.hpp"
#include "thermal/thermal_solver.hpp"

namespace ms::core {
namespace {

/// Small, fast configuration shared by the coupling tests; the direct global
/// solver removes iterative-tolerance noise from path comparisons.
SimulationConfig test_config() {
  SimulationConfig config = SimulationConfig::paper_default();
  config.mesh_spec = {8, 6};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 20;
  config.local.sample_displacements = false;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  return config;
}

TEST(ThermalCoupling, UniformPowerGivesUniformBlockDeltaT) {
  SimulationConfig config = test_config();
  MoreStressSimulator sim(config);
  const thermal::PowerMap power =
      thermal::PowerMap::per_block(3, 3, config.geometry.pitch, 40.0);
  const ThermalArrayResult result = sim.simulate_array_thermal(3, 3, power);

  ASSERT_EQ(result.load.values().size(), 9u);
  for (double dt : result.load.values()) {
    EXPECT_NEAR(dt, result.load.values().front(), 1e-9);
  }
  // Heat flows top -> sink, so the average die temperature sits above the
  // ambient the sink holds; ΔT is measured from stress_free = ambient.
  EXPECT_GT(result.load.values().front(), 0.0);
}

TEST(ThermalCoupling, HotspotHeatsCentreBlocksMost) {
  SimulationConfig config = test_config();
  MoreStressSimulator sim(config);
  thermal::PowerMap power = thermal::PowerMap::per_block(5, 5, config.geometry.pitch, 5.0);
  const double mid = 2.5 * config.geometry.pitch;
  power.add_gaussian_hotspot(mid, mid, config.geometry.pitch, 400.0);
  const ThermalArrayResult result = sim.simulate_array_thermal(5, 5, power);

  const auto& dt = result.load.values();
  const double centre = dt[2 * 5 + 2];
  const double edge = dt[2 * 5 + 0];
  const double corner = dt[0];
  EXPECT_GT(centre, edge);
  EXPECT_GT(edge, corner);
  // Lateral spreading (length ~ die height ~ 3 pitches) smooths the block
  // contrast well below the raw power ratio; assert a solid absolute gap.
  EXPECT_GT(centre - corner, 2.0);
  // The von Mises field must be visibly non-uniform: compare the hottest
  // block's peak against a corner block's.
  const int s = result.samples_per_block;
  const int width = result.region_blocks_x * s;
  const auto block_peak = [&](int bx, int by) {
    double peak = 0.0;
    for (int my = 0; my < s; ++my) {
      for (int mx = 0; mx < s; ++mx) {
        peak = std::max(peak, result.von_mises[(by * s + my) * width + bx * s + mx]);
      }
    }
    return peak;
  };
  // Lateral heat spreading and the clamped-face stress concentration soften
  // the contrast below the raw power ratio, but the field stays clearly
  // non-uniform.
  EXPECT_GT(block_peak(2, 2), 1.2 * block_peak(0, 0));
}

TEST(ThermalCoupling, UniformPowerMatchesScalarDeltaTPath) {
  SimulationConfig config = test_config();
  MoreStressSimulator sim(config);
  const thermal::PowerMap power =
      thermal::PowerMap::per_block(3, 3, config.geometry.pitch, 80.0);
  const ThermalArrayResult coupled = sim.simulate_array_thermal(3, 3, power);

  // Re-run the scalar-ΔT path at exactly the coupled ΔT.
  SimulationConfig scalar_config = test_config();
  scalar_config.thermal_load = coupled.load.values().front();
  MoreStressSimulator scalar_sim(scalar_config);
  const ArrayResult scalar = scalar_sim.simulate_array(3, 3);

  ASSERT_EQ(scalar.von_mises.size(), coupled.von_mises.size());
  double peak = 0.0;
  for (double v : scalar.von_mises) peak = std::max(peak, std::abs(v));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < scalar.von_mises.size(); ++i) {
    EXPECT_NEAR(coupled.von_mises[i], scalar.von_mises[i], 1e-8 * peak) << "sample " << i;
  }
}

TEST(ThermalCoupling, UniformLoadFieldMatchesScalarAssembly) {
  // The BlockLoadField plumbing itself: scalar and uniform-field overloads
  // must produce identical systems and fields.
  SimulationConfig config = test_config();
  MoreStressSimulator sim(config);
  const ArrayResult a = sim.simulate_array(2, 2);
  const ArrayResult b =
      sim.simulate_array(2, 2, rom::BlockLoadField::uniform(config.thermal_load));
  ASSERT_EQ(a.von_mises.size(), b.von_mises.size());
  for (std::size_t i = 0; i < a.von_mises.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.von_mises[i], b.von_mises[i]);
  }
}

TEST(ThermalCoupling, RejectsMismatchedPowerMapFootprint) {
  SimulationConfig config = test_config();
  MoreStressSimulator sim(config);
  // A 2x2-block map would silently leave most of a 3x3 array unpowered.
  const thermal::PowerMap small = thermal::PowerMap::per_block(2, 2, config.geometry.pitch, 10.0);
  EXPECT_THROW((void)sim.simulate_array_thermal(3, 3, small), std::invalid_argument);
}

TEST(ThermalCoupling, BlockLoadFieldValidatesExtent) {
  rom::BlockLoadField field(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_FALSE(field.is_uniform());
  EXPECT_DOUBLE_EQ(field.at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(field.min(), 1.0);
  EXPECT_DOUBLE_EQ(field.max(), 4.0);
  EXPECT_NO_THROW(field.validate_extent(2, 2));
  EXPECT_THROW(field.validate_extent(3, 2), std::invalid_argument);
  EXPECT_NO_THROW(rom::BlockLoadField::uniform(-250.0).validate_extent(7, 9));
  EXPECT_THROW(rom::BlockLoadField(2, 2, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ms::core
