#include "thermal/conduction.hpp"

#include <gtest/gtest.h>

#include "thermal/conduction_assembler.hpp"
#include "thermal/thermal_solver.hpp"

namespace ms::thermal {
namespace {

mesh::HexMesh bar_mesh(double side, double height, int elems_xy, int elems_z) {
  const auto lines = [](int n, double length) {
    std::vector<double> v(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i) v[i] = length * i / n;
    return v;
  };
  return mesh::HexMesh(lines(elems_xy, side), lines(elems_xy, side), lines(elems_z, height));
}

TEST(ConductionElement, SymmetricWithConstantTemperatureInKernel) {
  const auto ke = hex8_conduction_stiffness(120.0, 1.5, 2.0, 0.5);
  for (int a = 0; a < kCondDofs; ++a) {
    double row_sum = 0.0;
    for (int b = 0; b < kCondDofs; ++b) {
      EXPECT_NEAR(ke[a * kCondDofs + b], ke[b * kCondDofs + a], 1e-15);
      row_sum += ke[a * kCondDofs + b];
    }
    // A uniform temperature produces no flux.
    EXPECT_NEAR(row_sum, 0.0, 1e-15);
    EXPECT_GT(ke[a * kCondDofs + a], 0.0);
  }
}

TEST(ConductionElement, ScalesLinearlyWithConductivity) {
  const auto k1 = hex8_conduction_stiffness(100.0, 1.0, 1.0, 2.0);
  const auto k2 = hex8_conduction_stiffness(200.0, 1.0, 1.0, 2.0);
  for (int i = 0; i < kCondDofs * kCondDofs; ++i) EXPECT_NEAR(k2[i], 2.0 * k1[i], 1e-12);
}

TEST(ConductionElement, LinearTemperatureGivesExactNodalFlux) {
  // T = z on a box: flux through each z face is k A / hz * (um -> m scale).
  const double k = 50.0, hx = 2.0, hy = 3.0, hz = 4.0;
  const auto ke = hex8_conduction_stiffness(k, hx, hy, hz);
  std::array<double, kCondDofs> t{};
  for (int a = 0; a < fem::kHexNodes; ++a) {
    t[a] = 0.5 * hz * (1.0 + fem::kHexCorners[a][2]);
  }
  double top_flux = 0.0;
  for (int a = 4; a < 8; ++a) {
    for (int b = 0; b < kCondDofs; ++b) top_flux += ke[a * kCondDofs + b] * t[b];
  }
  // Unit gradient in z: flux = k * area, with the um -> m conversion.
  EXPECT_NEAR(top_flux, k * kMicro * hx * hy, 1e-12);
}

TEST(ConductionElement, TopFluxLoadSharesFaceEqually) {
  const auto fe = hex8_top_flux_load(2.0, 3.0, 5.0);
  for (int a = 0; a < 4; ++a) EXPECT_DOUBLE_EQ(fe[a], 0.0);
  for (int a = 4; a < 8; ++a) EXPECT_DOUBLE_EQ(fe[a], 2.0 * 15.0 / 4.0);
}

TEST(ConductionElement, FaceFilmMatrixIntegratesToArea)
{
  const double film = 1.0e4, hx = 2.0, hy = 5.0;
  const auto me = hex8_face_film_matrix(film, hx, hy, /*face=*/1);
  double total = 0.0;
  for (double v : me) total += v;
  EXPECT_NEAR(total, film * kMicro * kMicro * hx * hy, 1e-18);
  // Bottom-face nodes untouched.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < kCondDofs; ++b) EXPECT_DOUBLE_EQ(me[a * kCondDofs + b], 0.0);
  }
}

TEST(ConductionSlab, MatchesAnalytic1dProfileWithIdealSink) {
  // Uniform top flux q through a slab with T = ambient at z = 0:
  // T(z) = ambient + q z / k, nodally exact for linear elements.
  const double side = 10.0, height = 100.0, k = 100.0, q_mm2 = 1.0, ambient = 25.0;
  const mesh::HexMesh mesh = bar_mesh(side, height, 2, 8);
  const Vec conductivities(static_cast<std::size_t>(mesh.num_elems()), k);
  const PowerMap power(1, 1, side, side, q_mm2);

  ThermalSolveOptions options;
  options.method = "direct";
  options.ambient = ambient;
  const TemperatureField field = solve_power_map(mesh, conductivities, power, options);

  const double slope = (q_mm2 * kPerMm2ToPerUm2) / (k * kMicro);  // K per um
  for (idx_t node = 0; node < mesh.num_nodes(); ++node) {
    const mesh::Point3 p = mesh.node_pos(node);
    EXPECT_NEAR(field.nodal()[node], ambient + slope * p.z, 1e-9) << "node " << node;
  }
}

TEST(ConductionSlab, ConvectiveSinkAddsFilmResistance) {
  // Robin sink at z = 0: T(0) = ambient + q / h, then the conductive slope.
  const double side = 10.0, height = 50.0, k = 149.0, q_mm2 = 2.0, ambient = 25.0;
  const double film = 1.0e4;  // W/(m^2 K)
  const mesh::HexMesh mesh = bar_mesh(side, height, 2, 5);
  const Vec conductivities(static_cast<std::size_t>(mesh.num_elems()), k);
  const PowerMap power(1, 1, side, side, q_mm2);

  ThermalSolveOptions options;
  options.method = "direct";
  options.ambient = ambient;
  options.sink_film_coefficient = film;
  const TemperatureField field = solve_power_map(mesh, conductivities, power, options);

  const double q_um2 = q_mm2 * kPerMm2ToPerUm2;
  const double t0 = ambient + q_um2 / (film * kMicro * kMicro);
  const double slope = q_um2 / (k * kMicro);
  for (idx_t node = 0; node < mesh.num_nodes(); ++node) {
    const mesh::Point3 p = mesh.node_pos(node);
    EXPECT_NEAR(field.nodal()[node], t0 + slope * p.z, 1e-7) << "node " << node;
  }
}

TEST(ConductionSlab, CgAndDirectAgree) {
  const mesh::HexMesh mesh = bar_mesh(20.0, 50.0, 3, 4);
  const Vec conductivities(static_cast<std::size_t>(mesh.num_elems()), 149.0);
  PowerMap power(2, 2, 20.0, 20.0, 1.0);
  power.set_tile(0, 0, 4.0);  // break lateral symmetry

  ThermalSolveOptions direct;
  direct.method = "direct";
  ThermalSolveOptions cg;
  cg.method = "cg";
  cg.rel_tol = 1e-12;
  const TemperatureField a = solve_power_map(mesh, conductivities, power, direct);
  const TemperatureField b = solve_power_map(mesh, conductivities, power, cg);
  for (std::size_t i = 0; i < a.nodal().size(); ++i) {
    EXPECT_NEAR(a.nodal()[i], b.nodal()[i], 1e-6);
  }
}

TEST(EffectiveConductivity, LiesBetweenConstituentsAndExceedsSilicon) {
  const mesh::TsvGeometry geometry{15.0, 5.0, 0.5, 50.0};
  const fem::MaterialTable materials = fem::MaterialTable::standard();
  const double k_eff = effective_block_conductivity(geometry, materials);
  const double k_si = materials.at(mesh::MaterialId::Silicon).conductivity;
  const double k_cu = materials.at(mesh::MaterialId::Copper).conductivity;
  EXPECT_GT(k_eff, k_si);  // the copper via conducts better than bulk Si
  EXPECT_LT(k_eff, k_cu);
}

TEST(MaterialTable, StandardMaterialsCarryConductivities) {
  const fem::MaterialTable materials = fem::MaterialTable::standard();
  EXPECT_GT(materials.at(mesh::MaterialId::Silicon).conductivity, 0.0);
  EXPECT_GT(materials.at(mesh::MaterialId::Copper).conductivity,
            materials.at(mesh::MaterialId::Silicon).conductivity);
  EXPECT_GT(materials.at(mesh::MaterialId::Liner).conductivity, 0.0);
  EXPECT_GT(materials.at(mesh::MaterialId::Organic).conductivity, 0.0);
}

TEST(MaterialTable, StandardMaterialsCarryHeatCapacities) {
  const fem::MaterialTable materials = fem::MaterialTable::standard();
  // Solids cluster around 1-4 MJ/(m^3 K); copper is the densest store.
  for (auto id : {mesh::MaterialId::Silicon, mesh::MaterialId::Copper, mesh::MaterialId::Liner,
                  mesh::MaterialId::Organic}) {
    EXPECT_GT(materials.at(id).volumetric_heat_capacity, 1.0e6);
    EXPECT_LT(materials.at(id).volumetric_heat_capacity, 4.0e6);
  }
  EXPECT_GT(materials.at(mesh::MaterialId::Copper).volumetric_heat_capacity,
            materials.at(mesh::MaterialId::Silicon).volumetric_heat_capacity);
}

TEST(CapacitanceElement, ConsistentMatrixIntegratesToThermalMass) {
  const double c = 1.63e6, hx = 1.5, hy = 2.0, hz = 0.5;
  const auto me = hex8_capacitance_matrix(c, hx, hy, hz);
  const double mass = c * hx * hy * hz * kMicro * kMicro * kMicro;
  double total = 0.0;
  for (int a = 0; a < kCondDofs; ++a) {
    double row = 0.0;
    for (int b = 0; b < kCondDofs; ++b) {
      EXPECT_NEAR(me[a * kCondDofs + b], me[b * kCondDofs + a], 1e-25);
      EXPECT_GT(me[a * kCondDofs + b], 0.0);  // trilinear mass is positive
      row += me[a * kCondDofs + b];
    }
    // Each row integrates N_a against 1: the lumped share c V / 8.
    EXPECT_NEAR(row, mass / 8.0, 1e-12 * mass);
    total += row;
  }
  EXPECT_NEAR(total, mass, 1e-12 * mass);
  // Diagonal of the tensor-product mass is c V / 27.
  EXPECT_NEAR(me[0], mass / 27.0, 1e-12 * mass);
}

TEST(CapacitanceElement, LumpedMatchesConsistentRowSums) {
  const double c = 3.45e6, hx = 2.0, hy = 2.0, hz = 5.0;
  const auto lumped = hex8_lumped_capacitance(c, hx, hy, hz);
  const auto me = hex8_capacitance_matrix(c, hx, hy, hz);
  for (int a = 0; a < kCondDofs; ++a) {
    double row = 0.0;
    for (int b = 0; b < kCondDofs; ++b) row += me[a * kCondDofs + b];
    EXPECT_NEAR(lumped[a], row, 1e-12 * row);
  }
  EXPECT_THROW(hex8_lumped_capacitance(0.0, 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hex8_capacitance_matrix(-1.0, 1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(CapacitanceAssembly, AssembledDiagonalSumsToTotalMass) {
  const mesh::HexMesh mesh = bar_mesh(10.0, 20.0, 2, 3);
  const Vec capacity(static_cast<std::size_t>(mesh.num_elems()), 2.0e6);
  const double total_mass = 2.0e6 * (10.0 * 10.0 * 20.0) * 1e-18;
  for (bool lumped : {true, false}) {
    const CsrMatrix m = assemble_capacitance(mesh, capacity, lumped);
    double sum = 0.0;
    for (double v : m.values()) sum += v;
    EXPECT_NEAR(sum, total_mass, 1e-12 * total_mass);
    EXPECT_LE(m.symmetry_error(), 1e-25);
  }
  // Lumped assembly is strictly diagonal.
  const CsrMatrix diag = assemble_capacitance(mesh, capacity, true);
  EXPECT_EQ(diag.nnz(), static_cast<la::offset_t>(mesh.num_nodes()));
}

TEST(CapacitanceAssembly, EffectiveBlockCapacityIsVolumeAverage) {
  const mesh::TsvGeometry geometry{15.0, 5.0, 0.5, 50.0};
  const fem::MaterialTable materials = fem::MaterialTable::standard();
  const double c_eff = effective_block_capacity(geometry, materials);
  const double c_si = materials.at(mesh::MaterialId::Silicon).volumetric_heat_capacity;
  const double c_cu = materials.at(mesh::MaterialId::Copper).volumetric_heat_capacity;
  EXPECT_GT(c_eff, c_si);  // copper stores more heat per volume than Si
  EXPECT_LT(c_eff, c_cu);
  // Dummy blocks under kTsvAware are bulk silicon; kViaAveraged ignores the
  // flag.
  EXPECT_DOUBLE_EQ(
      block_capacity(geometry, materials, false, ConductivityModel::kTsvAware), c_si);
  EXPECT_DOUBLE_EQ(
      block_capacity(geometry, materials, true, ConductivityModel::kTsvAware), c_eff);
  EXPECT_DOUBLE_EQ(
      block_capacity(geometry, materials, false, ConductivityModel::kViaAveraged), c_eff);
}

}  // namespace
}  // namespace ms::thermal
