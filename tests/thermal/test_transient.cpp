// Transient conduction: the implicit θ-stepper against the steady-state
// solver (constant trace), against the analytic lumped-RC cooling curve
// (single near-isothermal body with a convective sink), the Crank–Nicolson
// 2nd-order convergence sweep, and the peak-envelope invariants of pulsed
// traces. The coupled path (simulate_array_thermal_transient) is
// regression-locked to the steady thermal coupling for constant traces.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/simulator.hpp"
#include "thermal/conduction_assembler.hpp"
#include "thermal/power_trace.hpp"
#include "thermal/thermal_solver.hpp"
#include "util/validation_harness.hpp"

namespace ms::thermal {
namespace {

mesh::HexMesh bar_mesh(double side, double height, int elems_xy, int elems_z) {
  const auto lines = [](int n, double length) {
    std::vector<double> v(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i) v[i] = length * i / n;
    return v;
  };
  return mesh::HexMesh(lines(elems_xy, side), lines(elems_xy, side), lines(elems_z, height));
}

/// Max-abs relative mismatch of two nodal fields.
double max_rel_diff(const la::Vec& a, const la::Vec& b) {
  double peak = 0.0;
  for (double v : b) peak = std::max(peak, std::abs(v));
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff = std::max(diff, std::abs(a[i] - b[i]));
  return peak > 0.0 ? diff / peak : diff;
}

TEST(TransientConduction, ConstantTraceRelaxesToSteadyState) {
  const mesh::HexMesh mesh = bar_mesh(30.0, 50.0, 3, 5);
  const la::Vec k(static_cast<std::size_t>(mesh.num_elems()), 149.0);
  const la::Vec c(static_cast<std::size_t>(mesh.num_elems()), 1.63e6);
  PowerMap power(3, 3, 30.0, 30.0, 25.0);
  power.set_tile(1, 1, 120.0);  // non-uniform so the comparison is non-trivial

  ThermalSolveOptions steady_options;
  steady_options.method = "direct";
  const TemperatureField steady = solve_power_map(mesh, k, power, steady_options);

  // Die thermal time constant tau ~ c L^2 / k ~ 3e-5 s; 80 backward-Euler
  // steps of 1e-4 s damp the slowest transient mode by far below 1e-8.
  TransientSolveOptions options;
  options.time_step = 1e-4;
  options.num_steps = 80;
  options.scheme = "backward-euler";
  BlockReduction reduction;
  reduction.blocks_x = reduction.blocks_y = 1;
  reduction.pitch = 30.0;
  TransientSolveStats stats;
  const TransientTemperatureResult result =
      solve_power_trace(mesh, k, c, PowerTrace::constant(power, 80e-4), reduction, options,
                        &stats);

  EXPECT_EQ(stats.num_steps, 80);
  EXPECT_EQ(stats.num_dofs, mesh.num_nodes());
  EXPECT_LT(max_rel_diff(result.final_field.nodal(), steady.nodal()), 1e-8);
}

TEST(TransientConduction, ConsistentCapacitanceAlsoRelaxesToSteadyState) {
  const mesh::HexMesh mesh = bar_mesh(30.0, 50.0, 3, 4);
  const la::Vec k(static_cast<std::size_t>(mesh.num_elems()), 149.0);
  const la::Vec c(static_cast<std::size_t>(mesh.num_elems()), 1.63e6);
  const PowerMap power(3, 3, 30.0, 30.0, 60.0);

  ThermalSolveOptions steady_options;
  steady_options.method = "direct";
  const TemperatureField steady = solve_power_map(mesh, k, power, steady_options);

  TransientSolveOptions options;
  options.time_step = 1e-4;
  options.num_steps = 80;
  options.lumped_capacitance = false;
  BlockReduction reduction;
  reduction.blocks_x = reduction.blocks_y = 1;
  reduction.pitch = 30.0;
  const TransientTemperatureResult result =
      solve_power_trace(mesh, k, c, PowerTrace::constant(power, 1.0), reduction, options);
  EXPECT_LT(max_rel_diff(result.final_field.nodal(), steady.nodal()), 1e-8);
}

/// Lumped-RC configuration: a single element with near-infinite conductivity
/// (isothermal body) cooling through a z-min film into ambient. Analytic:
/// T(t) = T_amb + (T0 - T_amb) exp(-t / tau), tau = c V / (h A) = c h_z / h.
struct RcCase {
  mesh::HexMesh mesh = bar_mesh(10.0, 20.0, 1, 1);
  double capacity = 1.6e6;
  double film = 4.0e4;
  double t0 = 125.0;
  double ambient = 25.0;
  double reference = 25.0;  ///< ΔT reduction reference (default: ambient)
  [[nodiscard]] double tau() const { return capacity * 20.0 * 1e-6 / film; }

  [[nodiscard]] TransientTemperatureResult run(const std::string& scheme, double dt,
                                               int steps) const {
    const la::Vec k(1, 1.0e6);  // ~isothermal: conduction much faster than the film
    const la::Vec c(1, capacity);
    TransientSolveOptions options;
    options.scheme = scheme;
    options.time_step = dt;
    options.num_steps = steps;
    options.initial_temperature = t0;
    options.base.ambient = ambient;
    options.base.sink_film_coefficient = film;
    BlockReduction reduction;
    reduction.blocks_x = reduction.blocks_y = 1;
    reduction.pitch = 10.0;
    reduction.reference = reference;
    PowerMap off(1, 1, 10.0, 10.0, 0.0);
    return solve_power_trace(mesh, k, c, PowerTrace::constant(off, dt * steps), reduction,
                             options);
  }

  /// Max-abs error of the recorded mean ΔT against the analytic decay,
  /// normalized by the initial excess.
  [[nodiscard]] double error_vs_analytic(const TransientTemperatureResult& result) const {
    double err = 0.0;
    for (std::size_t r = 0; r < result.times.size(); ++r) {
      const double analytic = (t0 - ambient) * std::exp(-result.times[r] / tau());
      err = std::max(err, std::abs(result.block_delta_t[r][0] - analytic));
    }
    return err / (t0 - ambient);
  }
};

TEST(TransientConduction, LumpedRcCoolingMatchesAnalyticCurve) {
  const RcCase rc;
  // ~tau/50 steps over two time constants: both schemes must track the
  // exponential tightly (BE first order ~ dt/tau, CN ~ (dt/tau)^2).
  const int steps = 100;
  const double dt = 2.0 * rc.tau() / steps;
  EXPECT_LT(rc.error_vs_analytic(rc.run("backward-euler", dt, steps)), 2e-2);
  EXPECT_LT(rc.error_vs_analytic(rc.run("crank-nicolson", dt, steps)), 5e-4);
}

TEST(TransientConduction, CrankNicolsonConvergesAtSecondOrder) {
  const RcCase rc;
  const double horizon = 2.0 * rc.tau();
  std::vector<double> errors;
  for (int steps : {25, 50, 100}) {
    errors.push_back(rc.error_vs_analytic(rc.run("crank-nicolson", horizon / steps, steps)));
  }
  // Successive halvings of dt must shrink the error ~4x (allow 3.4x for the
  // saturating tail); backward Euler at the same resolution only halves it.
  EXPECT_GT(errors[0] / errors[1], 3.4);
  EXPECT_GT(errors[1] / errors[2], 3.4);
  const double be_coarse = rc.error_vs_analytic(rc.run("backward-euler", horizon / 25, 25));
  const double be_fine = rc.error_vs_analytic(rc.run("backward-euler", horizon / 50, 50));
  EXPECT_GT(be_coarse / be_fine, 1.7);
  EXPECT_LT(be_coarse / be_fine, 2.6);
}

TEST(TransientConduction, EnvelopeTracksLargestMagnitudeWhenDeltaTIsNegative) {
  // Reflow-style reference: ΔT is measured from the *initial* temperature,
  // so the cooling body sweeps ΔT from 0 down to ~-(t0 - ambient). The
  // worst thermal-mismatch state is the most negative ΔT — a signed max
  // would wrongly pick the initial 0.
  RcCase rc;
  rc.reference = rc.t0;
  const TransientTemperatureResult result = rc.run("crank-nicolson", rc.tau() / 25.0, 50);
  EXPECT_LT(result.peak_envelope[0], -0.8 * (rc.t0 - rc.ambient));
  EXPECT_DOUBLE_EQ(result.peak_envelope[0], result.block_delta_t.back()[0]);
  EXPECT_DOUBLE_EQ(result.block_delta_t.front()[0], 0.0);
}

TEST(TransientConduction, PeakEnvelopeDominatesEveryRecordedState) {
  const mesh::HexMesh mesh = bar_mesh(30.0, 50.0, 3, 4);
  const la::Vec k(static_cast<std::size_t>(mesh.num_elems()), 149.0);
  const la::Vec c(static_cast<std::size_t>(mesh.num_elems()), 1.63e6);
  const PowerMap low(3, 3, 30.0, 30.0, 10.0);
  PowerMap high = low;
  high.add_gaussian_hotspot(15.0, 15.0, 8.0, 300.0);
  // Two 60 us pulses with a 40% duty cycle, 10 us steps.
  const PowerTrace trace = PowerTrace::square_wave(low, high, 60e-6, 0.4, 2);

  TransientSolveOptions options;
  options.time_step = 1e-5;
  BlockReduction reduction;
  reduction.blocks_x = reduction.blocks_y = 3;
  reduction.pitch = 10.0;
  reduction.reference = 25.0;
  const TransientTemperatureResult result =
      solve_power_trace(mesh, k, c, trace, reduction, options);

  ASSERT_EQ(result.peak_envelope.size(), 9u);
  for (const auto& blocks : result.block_delta_t) {
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      EXPECT_GE(result.peak_envelope[b], blocks[b]);
    }
  }
  // A pulsed trace must leave daylight between the envelope and the
  // time-average (otherwise the transient run degenerated to steady state).
  const std::size_t centre = 1 * 3 + 1;
  EXPECT_GT(result.peak_envelope[centre], 1.05 * result.time_average[centre]);
  // The envelope is attained at some record; times must be uniform from 0.
  EXPECT_DOUBLE_EQ(result.times.front(), 0.0);
  EXPECT_EQ(result.num_records(), result.block_delta_t.size());
}

TEST(TransientConduction, RejectsBadOptions) {
  const mesh::HexMesh mesh = bar_mesh(10.0, 20.0, 1, 1);
  const la::Vec k(1, 100.0);
  const la::Vec c(1, 1.6e6);
  const PowerTrace trace = PowerTrace::constant(PowerMap(1, 1, 10.0, 10.0, 1.0), 1e-3);
  BlockReduction reduction;
  reduction.pitch = 10.0;
  TransientSolveOptions options;
  options.scheme = "forward-euler";
  EXPECT_THROW(solve_power_trace(mesh, k, c, trace, reduction, options), std::invalid_argument);
  options = {};
  options.time_step = 0.0;
  EXPECT_THROW(solve_power_trace(mesh, k, c, trace, reduction, options), std::invalid_argument);
  options = {};
  EXPECT_THROW(solve_power_trace(mesh, k, c, PowerTrace(), reduction, options),
               std::invalid_argument);
  // Zero-conductivity / zero-capacity materials are rejected by the
  // material-table overload.
  fem::Material dead = fem::silicon();
  dead.volumetric_heat_capacity = 0.0;
  const fem::MaterialTable materials({dead});
  EXPECT_THROW(solve_power_trace(mesh, materials, trace, reduction, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace ms::thermal

namespace ms::core {
namespace {

SimulationConfig coupled_test_config() {
  SimulationConfig config = SimulationConfig::paper_default();
  config.mesh_spec = {8, 6};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 20;
  config.local.sample_displacements = false;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  return config;
}

TEST(TransientCoupling, ConstantTraceReproducesSteadyCoupling) {
  SimulationConfig config = coupled_test_config();
  // Long horizon: 100 steps of 1e-4 s >> tau, so the constant trace ends at
  // the steady state and the envelope equals the steady per-block ΔT.
  config.coupling.transient.time_step = 1e-4;
  config.coupling.transient.num_steps = 100;
  MoreStressSimulator sim(config);

  thermal::PowerMap power = thermal::PowerMap::per_block(3, 3, config.geometry.pitch, 30.0);
  power.set_tile(1, 1, 90.0);
  const ThermalArrayResult steady = sim.simulate_array_thermal(3, 3, power);
  const ThermalTransientArrayResult transient = sim.simulate_array_thermal_transient(
      3, 3, thermal::PowerTrace::constant(power, 1e-2), {0});

  // Per-block envelope ΔT matches the steady reduction to 1e-8 (relative).
  ASSERT_EQ(transient.envelope_load.values().size(), steady.load.values().size());
  const double dt_peak =
      std::max(std::abs(steady.load.min()), std::abs(steady.load.max()));
  for (std::size_t b = 0; b < steady.load.values().size(); ++b) {
    EXPECT_NEAR(transient.envelope_load.values()[b], steady.load.values()[b], 1e-8 * dt_peak)
        << "block " << b;
  }
  // And hence identical ROM stress to the same tolerance.
  ASSERT_EQ(transient.von_mises.size(), steady.von_mises.size());
  double peak = 0.0;
  for (double v : steady.von_mises) peak = std::max(peak, std::abs(v));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < steady.von_mises.size(); ++i) {
    EXPECT_NEAR(transient.von_mises[i], steady.von_mises[i], 1e-8 * peak) << "sample " << i;
  }
  // The requested snapshot at the initial state carries zero load -> the
  // snapshot machinery ran and produced a distinct (colder) field.
  ASSERT_EQ(transient.snapshots.size(), 1u);
  ASSERT_EQ(transient.snapshot_steps.front(), 0);
}

TEST(TransientCoupling, PulsedTraceEnvelopeExceedsFinalState) {
  SimulationConfig config = coupled_test_config();
  config.coupling.transient.time_step = 1e-5;
  MoreStressSimulator sim(config);

  const double pitch = config.geometry.pitch;
  const thermal::PowerMap low = thermal::PowerMap::per_block(3, 3, pitch, 5.0);
  thermal::PowerMap high = low;
  high.add_gaussian_hotspot(1.5 * pitch, 1.5 * pitch, pitch, 400.0);
  // One 50 us pulse then 50 us of cool-down: the envelope must remember the
  // pulse the final state has already forgotten.
  const thermal::PowerTrace trace = thermal::PowerTrace::square_wave(low, high, 1e-4, 0.5, 1);
  const ThermalTransientArrayResult result = sim.simulate_array_thermal_transient(3, 3, trace);

  const std::size_t centre = 1 * 3 + 1;
  EXPECT_GT(result.envelope_load.values()[centre],
            result.transient.block_delta_t.back()[centre] + 1.0);
  // Envelope >= every recorded state, blockwise.
  for (const auto& blocks : result.transient.block_delta_t) {
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      EXPECT_GE(result.envelope_load.values()[b], blocks[b]);
    }
  }
  EXPECT_THROW(sim.simulate_array_thermal_transient(3, 3, trace, {9999}),
               std::invalid_argument);
}

TEST(TransientCoupling, SnapshotStressesValidateAgainstBatchedReferenceFem) {
  // The simulator solves the envelope + all snapshots as one multi-RHS panel
  // against a single global factorization; the harness checks each of those
  // stress fields against brute-force FEM solves that themselves share one
  // fine-mesh factorization (fem::solve_thermal_stress_multi).
  SimulationConfig config = coupled_test_config();
  config.coupling.transient.time_step = 2e-5;
  config.coupling.transient.num_steps = 10;

  const double pitch = config.geometry.pitch;
  const thermal::PowerMap low = thermal::PowerMap::per_block(2, 2, pitch, 10.0);
  thermal::PowerMap high = low;
  high.add_gaussian_hotspot(pitch, pitch, pitch, 300.0);
  const thermal::PowerTrace trace = thermal::PowerTrace::square_wave(low, high, 2e-4, 0.5, 1);

  const testutil::TransientValidationReport report =
      testutil::validate_array_thermal_transient(config, 2, 2, trace, {3, 7, 10});
  // Same error band the steady scenarios are held to (paper Sec. 5.2).
  EXPECT_LT(report.envelope_von_mises_error, 0.05);
  ASSERT_EQ(report.snapshot_von_mises_errors.size(), 3u);
  for (double err : report.snapshot_von_mises_errors) EXPECT_LT(err, 0.05);
}

}  // namespace
}  // namespace ms::core
