#include "fem/stress.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fem/assembler.hpp"
#include "mesh/grading.hpp"

namespace ms::fem {
namespace {

mesh::HexMesh box_mesh(int n, double l = 1.0) {
  const auto c = mesh::uniform_coords(0.0, l, n);
  return mesh::HexMesh(c, c, c);
}

TEST(VonMises, KnownValues) {
  EXPECT_DOUBLE_EQ(von_mises({0, 0, 0, 0, 0, 0}), 0.0);
  // Pure hydrostatic stress has zero von Mises.
  EXPECT_NEAR(von_mises({5, 5, 5, 0, 0, 0}), 0.0, 1e-12);
  // Uniaxial: von Mises equals the axial stress.
  EXPECT_NEAR(von_mises({100, 0, 0, 0, 0, 0}), 100.0, 1e-12);
  // Pure shear tau: sqrt(3) tau.
  EXPECT_NEAR(von_mises({0, 0, 0, 0, 0, 10}), 10.0 * std::sqrt(3.0), 1e-12);
}

TEST(StrainAt, LinearDisplacementGivesExactStrain) {
  const mesh::HexMesh m = box_mesh(3);
  Vec u(3 * m.num_nodes());
  // u = (0.01 x, -0.02 y, 0.03 z) -> eps = diag(0.01, -0.02, 0.03).
  for (la::idx_t node = 0; node < m.num_nodes(); ++node) {
    const mesh::Point3 p = m.node_pos(node);
    u[dof_of(node, 0)] = 0.01 * p.x;
    u[dof_of(node, 1)] = -0.02 * p.y;
    u[dof_of(node, 2)] = 0.03 * p.z;
  }
  const Stress6 eps = strain_at(m, u, {0.4, 0.5, 0.6});
  EXPECT_NEAR(eps[0], 0.01, 1e-13);
  EXPECT_NEAR(eps[1], -0.02, 1e-13);
  EXPECT_NEAR(eps[2], 0.03, 1e-13);
  EXPECT_NEAR(eps[3], 0.0, 1e-13);
}

TEST(StressAt, FreeThermalExpansionGivesZeroStress) {
  // With u = alpha DT x (pure thermal dilation), sigma must vanish.
  const mesh::HexMesh m = box_mesh(2);
  const MaterialTable table = MaterialTable::standard();
  const Material& si = table.at(mesh::MaterialId::Silicon);
  const double dt = -250.0;
  Vec u(3 * m.num_nodes());
  for (la::idx_t node = 0; node < m.num_nodes(); ++node) {
    const mesh::Point3 p = m.node_pos(node);
    u[dof_of(node, 0)] = si.cte * dt * p.x;
    u[dof_of(node, 1)] = si.cte * dt * p.y;
    u[dof_of(node, 2)] = si.cte * dt * p.z;
  }
  const Stress6 sigma = stress_at(m, table, u, dt, {0.3, 0.7, 0.5});
  for (int r = 0; r < kVoigt; ++r) EXPECT_NEAR(sigma[r], 0.0, 1e-9) << r;
}

TEST(StressAt, FullyConstrainedThermalStressIsAnalytic) {
  // u = 0 with thermal load DT: sigma = -DT alpha (3 lambda + 2 mu) I.
  const mesh::HexMesh m = box_mesh(2);
  const MaterialTable table = MaterialTable::standard();
  const Material& si = table.at(mesh::MaterialId::Silicon);
  const double dt = -250.0;
  const Vec u(3 * m.num_nodes(), 0.0);
  const Stress6 sigma = stress_at(m, table, u, dt, {0.5, 0.5, 0.5});
  const double expected = -dt * si.thermal_modulus();
  for (int r = 0; r < 3; ++r) EXPECT_NEAR(sigma[r], expected, 1e-9);
  for (int r = 3; r < 6; ++r) EXPECT_NEAR(sigma[r], 0.0, 1e-12);
  EXPECT_NEAR(von_mises(sigma), 0.0, 1e-9);  // hydrostatic
}

TEST(PlaneGrid, CellCentredSamples) {
  const PlaneGrid grid = make_block_plane_grid(10.0, 2, 1, 4, 5.0);
  ASSERT_EQ(grid.xs.size(), 8u);
  ASSERT_EQ(grid.ys.size(), 4u);
  EXPECT_DOUBLE_EQ(grid.xs[0], 1.25);
  EXPECT_DOUBLE_EQ(grid.xs[4], 11.25);
  EXPECT_DOUBLE_EQ(grid.ys[3], 8.75);
  EXPECT_DOUBLE_EQ(grid.z, 5.0);
  EXPECT_EQ(grid.size(), 32u);
}

TEST(SamplePlaneStress, LayoutIsYMajor) {
  const mesh::HexMesh m = box_mesh(2);
  const MaterialTable table = MaterialTable::standard();
  Vec u(3 * m.num_nodes());
  // u_x = x so eps_xx = 1 everywhere; stress should be uniform => layout
  // cannot matter for values, so instead encode position: u_x = x * y.
  for (la::idx_t node = 0; node < m.num_nodes(); ++node) {
    const mesh::Point3 p = m.node_pos(node);
    u[dof_of(node, 0)] = p.x * p.y;
  }
  PlaneGrid grid;
  grid.xs = {0.25, 0.75};
  grid.ys = {0.25, 0.75};
  grid.z = 0.5;
  const auto stress = sample_plane_stress(m, table, u, 0.0, grid);
  ASSERT_EQ(stress.size(), 4u);
  // eps_xx = y: index 0 -> y=0.25, index 2 -> y=0.75 (y-major ordering).
  EXPECT_GT(stress[2][0], stress[0][0]);
  EXPECT_NEAR(stress[1][0], stress[0][0], 1e-9);  // same y, different x
}

TEST(NormalizedMae, DefinitionAndEdgeCases) {
  const std::vector<double> ref{10.0, -10.0, 0.0, 5.0};
  const std::vector<double> test{11.0, -10.0, 1.0, 5.0};
  // mean |diff| = (1 + 0 + 1 + 0)/4 = 0.5; max |ref| = 10.
  EXPECT_NEAR(normalized_mae(ref, test), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(normalized_mae({0.0, 0.0}, {0.0, 0.0}), 0.0);
  EXPECT_THROW(normalized_mae({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(normalized_mae({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ms::fem
