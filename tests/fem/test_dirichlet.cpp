#include "fem/dirichlet.hpp"

#include <gtest/gtest.h>

#include "fem/assembler.hpp"
#include "la/cholesky.hpp"
#include "mesh/grading.hpp"

namespace ms::fem {
namespace {

mesh::HexMesh box_mesh(int n) {
  const auto c = mesh::uniform_coords(0.0, 1.0, n);
  return mesh::HexMesh(c, c, c);
}

TEST(DirichletBc, ClampNodesExpandsComponents) {
  const DirichletBc bc = DirichletBc::clamp_nodes({3, 7});
  ASSERT_EQ(bc.size(), 6u);
  EXPECT_EQ(bc.dofs[0], 9);
  EXPECT_EQ(bc.dofs[5], 23);
  for (double v : bc.values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DirichletBc, ClampNodesWithValues) {
  const DirichletBc bc = DirichletBc::clamp_nodes({2}, {0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(bc.values[2], 0.3);
  EXPECT_THROW(DirichletBc::clamp_nodes({1, 2}, {0.1}), std::invalid_argument);
}

TEST(ApplyDirichlet, ConstrainedRowsBecomeIdentity) {
  const mesh::HexMesh m = box_mesh(2);
  AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  Vec rhs = sys.thermal_load;
  DirichletBc bc;
  bc.add(0, 0.25);
  bc.add(5, -1.0);
  apply_dirichlet(sys.stiffness, rhs, bc);

  EXPECT_DOUBLE_EQ(sys.stiffness.coeff(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(rhs[0], 0.25);
  EXPECT_DOUBLE_EQ(rhs[5], -1.0);
  // Row 0 is zero except the diagonal; column 0 also zeroed (symmetry kept).
  for (idx_t j = 1; j < sys.stiffness.cols(); ++j) {
    EXPECT_DOUBLE_EQ(sys.stiffness.coeff(0, j), 0.0);
  }
  for (idx_t i = 1; i < sys.stiffness.rows(); ++i) {
    EXPECT_DOUBLE_EQ(sys.stiffness.coeff(i, 0), 0.0);
  }
  EXPECT_LT(sys.stiffness.symmetry_error(), 1e-9);
}

TEST(ApplyDirichlet, SolutionHonorsPrescribedValues) {
  const mesh::HexMesh m = box_mesh(3);
  AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  Vec rhs = sys.thermal_load;
  la::scale(rhs, -100.0);  // some thermal load

  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  apply_dirichlet(sys.stiffness, rhs, bc);
  const Vec u = la::SparseCholesky(sys.stiffness).solve(rhs);
  for (std::size_t k = 0; k < bc.dofs.size(); ++k) {
    EXPECT_NEAR(u[bc.dofs[k]], bc.values[k], 1e-12);
  }
}

TEST(ApplyDirichlet, LiftingMovesLoadToRhs) {
  // Prescribe a nonzero value and check the free equations see -A_fb * u_bc.
  const mesh::HexMesh m = box_mesh(2);
  AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  const la::CsrMatrix original = sys.stiffness;
  Vec rhs(sys.num_dofs, 0.0);
  DirichletBc bc;
  const idx_t constrained = 4;
  const double value = 2.5;
  bc.add(constrained, value);
  apply_dirichlet(sys.stiffness, rhs, bc);
  for (idx_t r = 0; r < sys.num_dofs; ++r) {
    if (r == constrained) continue;
    EXPECT_NEAR(rhs[r], -original.coeff(r, constrained) * value, 1e-12);
  }
}

TEST(ApplyDirichlet, SplitHalvesMatchFusedBitwise) {
  // The factorization cache relies on this identity: the rhs half against
  // the *unlifted* operator plus the matrix half must reproduce the fused
  // apply_dirichlet exactly, bit for bit, for nonzero prescribed values.
  const mesh::HexMesh m = box_mesh(3);
  const AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  for (std::size_t k = 0; k < bc.values.size(); ++k) {
    bc.values[k] = 0.01 * static_cast<double>(k % 7) - 0.02;
  }

  la::CsrMatrix fused_a = sys.stiffness;
  Vec fused_rhs = sys.thermal_load;
  apply_dirichlet(fused_a, fused_rhs, bc);

  la::CsrMatrix split_a = sys.stiffness;
  Vec split_rhs = sys.thermal_load;
  apply_dirichlet_rhs(split_a, split_rhs, bc);  // against the unlifted operator
  apply_dirichlet_matrix(split_a, bc);

  ASSERT_EQ(split_rhs.size(), fused_rhs.size());
  for (std::size_t i = 0; i < fused_rhs.size(); ++i) {
    EXPECT_EQ(split_rhs[i], fused_rhs[i]) << "rhs mismatch at dof " << i;
  }
  EXPECT_EQ(split_a.values(), fused_a.values());

  // Multi-rhs overload: same identity across a panel.
  std::vector<Vec> fused_panel = {sys.thermal_load, Vec(sys.num_dofs, 0.5)};
  la::CsrMatrix fused_pa = sys.stiffness;
  apply_dirichlet(fused_pa, fused_panel, bc);
  std::vector<Vec> split_panel = {sys.thermal_load, Vec(sys.num_dofs, 0.5)};
  la::CsrMatrix split_pa = sys.stiffness;
  apply_dirichlet_rhs(split_pa, split_panel, bc);
  apply_dirichlet_matrix(split_pa, bc);
  for (std::size_t r = 0; r < fused_panel.size(); ++r) {
    EXPECT_EQ(split_panel[r], fused_panel[r]) << "panel rhs " << r;
  }
  EXPECT_EQ(split_pa.values(), fused_pa.values());
}

TEST(PartitionDofs, SplitsAndNumbersConsistently) {
  const DofPartition part = partition_dofs(6, {1, 4});
  EXPECT_EQ(part.num_free, 4);
  EXPECT_EQ(part.num_bc, 2);
  EXPECT_EQ(part.free_map[0], 0);
  EXPECT_EQ(part.free_map[1], -1);
  EXPECT_EQ(part.bc_map[1], 0);
  EXPECT_EQ(part.bc_map[4], 1);
  EXPECT_EQ(part.free_map[5], 3);
}

TEST(PartitionDofs, DuplicateConstraintsAreIdempotent) {
  const DofPartition part = partition_dofs(4, {2, 2, 2});
  EXPECT_EQ(part.num_bc, 1);
  EXPECT_EQ(part.num_free, 3);
}

}  // namespace
}  // namespace ms::fem
