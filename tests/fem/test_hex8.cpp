#include "fem/hex8.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::fem {
namespace {

TEST(Hex8Shape, PartitionOfUnity) {
  for (double xi : {-0.7, 0.0, 0.3}) {
    for (double eta : {-0.2, 0.8}) {
      for (double zeta : {-1.0, 0.5}) {
        const auto n = hex8_shape(xi, eta, zeta);
        double sum = 0.0;
        for (double v : n) sum += v;
        EXPECT_NEAR(sum, 1.0, 1e-14);
      }
    }
  }
}

TEST(Hex8Shape, KroneckerAtCorners) {
  for (int a = 0; a < kHexNodes; ++a) {
    const auto n = hex8_shape(kHexCorners[a][0], kHexCorners[a][1], kHexCorners[a][2]);
    for (int b = 0; b < kHexNodes; ++b) {
      EXPECT_NEAR(n[b], a == b ? 1.0 : 0.0, 1e-14);
    }
  }
}

TEST(Hex8Shape, GradientsSumToZero) {
  const auto g = hex8_shape_grad(0.2, -0.4, 0.9);
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (int a = 0; a < kHexNodes; ++a) sum += g[a][c];
    EXPECT_NEAR(sum, 0.0, 1e-14);
  }
}

TEST(Hex8Shape, GradientMatchesFiniteDifference) {
  const double h = 1e-6;
  const auto g = hex8_shape_grad(0.1, 0.2, -0.3);
  const auto np = hex8_shape(0.1 + h, 0.2, -0.3);
  const auto nm = hex8_shape(0.1 - h, 0.2, -0.3);
  for (int a = 0; a < kHexNodes; ++a) {
    EXPECT_NEAR(g[a][0], (np[a] - nm[a]) / (2 * h), 1e-8);
  }
}

TEST(Hex8BMatrix, LinearFieldGivesConstantStrain) {
  // u = (x, 0, 0) on an hx x hy x hz box => eps_xx = 1, everything else 0.
  const double hx = 2.0, hy = 3.0, hz = 4.0;
  std::array<double, kHexDofs> ue{};
  for (int a = 0; a < kHexNodes; ++a) {
    const double x = 0.5 * hx * (1.0 + kHexCorners[a][0]);
    ue[3 * a] = x;
  }
  const BMatrix b = hex8_b_matrix(0.3, -0.2, 0.7, hx, hy, hz);
  double eps[kVoigt] = {};
  for (int r = 0; r < kVoigt; ++r) {
    for (int c = 0; c < kHexDofs; ++c) eps[r] += b[r][c] * ue[c];
  }
  EXPECT_NEAR(eps[0], 1.0, 1e-13);
  for (int r = 1; r < kVoigt; ++r) EXPECT_NEAR(eps[r], 0.0, 1e-13);
}

TEST(Hex8BMatrix, ShearFieldGivesEngineeringShear) {
  // u = (y, 0, 0) => gamma_xy = 1; all other components 0.
  const double hx = 1.0, hy = 2.0, hz = 1.0;
  std::array<double, kHexDofs> ue{};
  for (int a = 0; a < kHexNodes; ++a) {
    const double y = 0.5 * hy * (1.0 + kHexCorners[a][1]);
    ue[3 * a] = y;
  }
  const BMatrix b = hex8_b_matrix(-0.1, 0.4, 0.2, hx, hy, hz);
  double eps[kVoigt] = {};
  for (int r = 0; r < kVoigt; ++r) {
    for (int c = 0; c < kHexDofs; ++c) eps[r] += b[r][c] * ue[c];
  }
  EXPECT_NEAR(eps[5], 1.0, 1e-13);  // gamma_xy
  EXPECT_NEAR(eps[0], 0.0, 1e-13);
  EXPECT_NEAR(eps[3], 0.0, 1e-13);
}

TEST(Hex8Stiffness, SymmetricPositiveSemiDefinite) {
  const Material mat{"m", 100.0, 0.3, 1e-6};
  const auto ke = hex8_stiffness(mat, 1.0, 2.0, 0.5);
  for (int i = 0; i < kHexDofs; ++i) {
    for (int j = 0; j < kHexDofs; ++j) {
      EXPECT_NEAR(ke[i * kHexDofs + j], ke[j * kHexDofs + i], 1e-9);
    }
    EXPECT_GT(ke[i * kHexDofs + i], 0.0);
  }
}

TEST(Hex8Stiffness, RigidTranslationInKernel) {
  const Material mat{"m", 70.0, 0.2, 1e-6};
  const auto ke = hex8_stiffness(mat, 1.5, 1.0, 2.0);
  for (int c = 0; c < 3; ++c) {
    std::array<double, kHexDofs> t{};
    for (int a = 0; a < kHexNodes; ++a) t[3 * a + c] = 1.0;
    for (int i = 0; i < kHexDofs; ++i) {
      double sum = 0.0;
      for (int j = 0; j < kHexDofs; ++j) sum += ke[i * kHexDofs + j] * t[j];
      EXPECT_NEAR(sum, 0.0, 1e-8) << "component " << c << " row " << i;
    }
  }
}

TEST(Hex8Stiffness, ScalesLinearlyWithYoungsModulus) {
  const Material m1{"m1", 100.0, 0.3, 0.0};
  const Material m2{"m2", 200.0, 0.3, 0.0};
  const auto k1 = hex8_stiffness(m1, 1.0, 1.0, 1.0);
  const auto k2 = hex8_stiffness(m2, 1.0, 1.0, 1.0);
  for (int i = 0; i < kHexDofs * kHexDofs; ++i) EXPECT_NEAR(k2[i], 2.0 * k1[i], 1e-8);
}

TEST(Hex8ThermalLoad, BalancedAndScalesWithVolume) {
  const Material mat{"m", 100.0, 0.3, 2e-6};
  const auto f1 = hex8_thermal_load(mat, 1.0, 1.0, 1.0);
  const auto f2 = hex8_thermal_load(mat, 2.0, 1.0, 1.0);
  // Net force in each component is zero (self-equilibrated eigenstrain load).
  for (int c = 0; c < 3; ++c) {
    double net1 = 0.0;
    for (int a = 0; a < kHexNodes; ++a) net1 += f1[3 * a + c];
    EXPECT_NEAR(net1, 0.0, 1e-10);
  }
  // x-faces double when the element is twice as wide in x: the x-load on a
  // corner is proportional to the face area normal to x (hy*hz), unchanged,
  // while y/z loads double. Verify the y component doubles.
  EXPECT_NEAR(f2[1], 2.0 * f1[1], 1e-10);
}

TEST(Hex8ThermalLoad, ZeroCteGivesZeroLoad) {
  const Material mat{"m", 100.0, 0.3, 0.0};
  const auto fe = hex8_thermal_load(mat, 1.0, 2.0, 3.0);
  for (double v : fe) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace ms::fem
