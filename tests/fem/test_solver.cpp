#include "fem/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fem/stress.hpp"
#include "mesh/grading.hpp"
#include "mesh/tsv_block.hpp"

namespace ms::fem {
namespace {

mesh::HexMesh box_mesh(int n, double l = 1.0) {
  const auto c = mesh::uniform_coords(0.0, l, n);
  return mesh::HexMesh(c, c, c);
}

TEST(Solver, CgAndDirectAgree) {
  const mesh::HexMesh m = box_mesh(4);
  const MaterialTable table = MaterialTable::standard();
  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());

  FemSolveOptions direct;
  direct.method = "direct";
  FemSolveOptions cg;
  cg.method = "cg";
  cg.rel_tol = 1e-12;

  const Vec u1 = solve_thermal_stress(m, table, -250.0, bc, direct);
  const Vec u2 = solve_thermal_stress(m, table, -250.0, bc, cg);
  EXPECT_LT(la::max_abs_diff(u1, u2), 1e-7);
}

TEST(Solver, StatsArePopulated) {
  const mesh::HexMesh m = box_mesh(3);
  const MaterialTable table = MaterialTable::standard();
  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  FemSolveStats stats;
  FemSolveOptions options;
  options.rel_tol = 1e-9;
  (void)solve_thermal_stress(m, table, -250.0, bc, options, &stats);
  EXPECT_EQ(stats.num_dofs, 3 * m.num_nodes());
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_GT(stats.matrix_bytes, 0u);
  EXPECT_GT(stats.total_seconds(), 0.0);
  EXPECT_EQ(stats.total_bytes(), stats.matrix_bytes + stats.solver_bytes);
}

TEST(Solver, ZeroThermalLoadGivesZeroDisplacement) {
  const mesh::HexMesh m = box_mesh(3);
  const MaterialTable table = MaterialTable::standard();
  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  const Vec u = solve_thermal_stress(m, table, 0.0, bc, {});
  EXPECT_LT(la::norm_inf(u), 1e-12);
}

TEST(Solver, DisplacementScalesLinearlyWithLoad) {
  const mesh::HexMesh m = box_mesh(3);
  const MaterialTable table = MaterialTable::standard();
  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  FemSolveOptions options;
  options.method = "direct";
  const Vec u1 = solve_thermal_stress(m, table, -100.0, bc, options);
  const Vec u2 = solve_thermal_stress(m, table, -200.0, bc, options);
  for (std::size_t i = 0; i < u1.size(); ++i) EXPECT_NEAR(u2[i], 2.0 * u1[i], 1e-9);
}

TEST(Solver, UniformSiliconClampedPlateHasHydrostaticCore) {
  // Pure silicon plate, wide relative to its thickness, clamped top/bottom:
  // away from the lateral free faces u -> 0 and sigma -> -DT beta I, whose
  // von Mises is zero. (A cube has no such core — the plate aspect matters.)
  const mesh::HexMesh m(mesh::uniform_coords(0.0, 16.0, 16), mesh::uniform_coords(0.0, 16.0, 16),
                        mesh::uniform_coords(0.0, 2.0, 3));
  const MaterialTable table = MaterialTable::standard();
  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  FemSolveOptions options;
  options.method = "direct";
  const Vec u = solve_thermal_stress(m, table, -250.0, bc, options);
  const Stress6 centre = stress_at(m, table, u, -250.0, {8.1, 8.1, 1.1});
  const double hydro = -(-250.0) * table.at(mesh::MaterialId::Silicon).thermal_modulus();
  // Centre normal stresses near the analytic fully-constrained value.
  EXPECT_NEAR(centre[0] / hydro, 1.0, 0.1);
  EXPECT_NEAR(centre[1] / hydro, 1.0, 0.1);
  EXPECT_NEAR(centre[2] / hydro, 1.0, 0.1);
  // von Mises much smaller than the normal stress scale.
  EXPECT_LT(von_mises(centre), 0.1 * hydro);
}

TEST(Solver, TsvBlockPeakStressAtViaInterface) {
  // Physics sanity: the stress concentration sits at/near the via.
  const mesh::TsvGeometry g{15.0, 5.0, 0.5, 50.0};
  const mesh::HexMesh m = mesh::build_tsv_block_mesh(g, {10, 5});
  const MaterialTable table = MaterialTable::standard();
  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  FemSolveOptions options;
  options.method = "direct";
  const Vec u = solve_thermal_stress(m, table, -250.0, bc, options);

  const PlaneGrid grid = make_block_plane_grid(15.0, 1, 1, 30, 25.0);
  const auto vm = to_von_mises(sample_plane_stress(m, table, u, -250.0, grid));
  // Find the peak location.
  std::size_t arg = 0;
  for (std::size_t i = 0; i < vm.size(); ++i) {
    if (vm[i] > vm[arg]) arg = i;
  }
  const double x = grid.xs[arg % grid.xs.size()];
  const double y = grid.ys[arg / grid.xs.size()];
  const double r = std::hypot(x - 7.5, y - 7.5);
  EXPECT_LT(r, 2.0 * g.liner_radius());  // peak within twice the via radius
  EXPECT_GT(vm[arg], 100.0);             // hundreds of MPa scale
}

TEST(Solver, UnknownMethodThrows) {
  const mesh::HexMesh m = box_mesh(2);
  const MaterialTable table = MaterialTable::standard();
  const DirichletBc bc = DirichletBc::clamp_nodes(m.top_bottom_nodes());
  FemSolveOptions options;
  options.method = "multigrid";
  EXPECT_THROW(solve_thermal_stress(m, table, -1.0, bc, options), std::invalid_argument);
}

}  // namespace
}  // namespace ms::fem
