#include "fem/material.hpp"

#include <gtest/gtest.h>

namespace ms::fem {
namespace {

TEST(Material, LameConversionMatchesEq2) {
  const Material m{"test", 100.0, 0.25, 1e-6};
  // lambda = E nu / ((1+nu)(1-2nu)) = 100*0.25/(1.25*0.5) = 40
  EXPECT_NEAR(m.lame_lambda(), 40.0, 1e-12);
  // mu = E / (2(1+nu)) = 40
  EXPECT_NEAR(m.lame_mu(), 40.0, 1e-12);
  EXPECT_NEAR(m.thermal_modulus(), 1e-6 * (3 * 40.0 + 2 * 40.0), 1e-15);
}

TEST(Material, DMatrixStructure) {
  const Material m{"test", 210.0, 0.3, 0.0};
  const auto d = m.d_matrix();
  const double lambda = m.lame_lambda();
  const double mu = m.lame_mu();
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(d[i * kVoigt + i], lambda + 2 * mu, 1e-9);
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_NEAR(d[i * kVoigt + j], lambda, 1e-9);
    }
    EXPECT_NEAR(d[(i + 3) * kVoigt + (i + 3)], mu, 1e-9);
  }
  // Normal/shear coupling is zero for isotropy.
  for (int i = 0; i < 3; ++i) {
    for (int j = 3; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(d[i * kVoigt + j], 0.0);
      EXPECT_DOUBLE_EQ(d[j * kVoigt + i], 0.0);
    }
  }
}

TEST(Material, ThermalStressUnitIsIsotropic) {
  const Material m = copper();
  const auto s = m.thermal_stress_unit();
  EXPECT_DOUBLE_EQ(s[0], s[1]);
  EXPECT_DOUBLE_EQ(s[1], s[2]);
  EXPECT_DOUBLE_EQ(s[3], 0.0);
  EXPECT_DOUBLE_EQ(s[4], 0.0);
  EXPECT_DOUBLE_EQ(s[5], 0.0);
  EXPECT_GT(s[0], 0.0);
}

TEST(Material, ValidationBounds) {
  Material bad{"bad", -1.0, 0.3, 0.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {"bad", 1.0, 0.5, 0.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {"bad", 1.0, -1.0, 0.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(MaterialTable, StandardSetMapsIds) {
  const MaterialTable table = MaterialTable::standard();
  EXPECT_EQ(table.at(mesh::MaterialId::Silicon).name, "Si");
  EXPECT_EQ(table.at(mesh::MaterialId::Copper).name, "Cu");
  EXPECT_EQ(table.at(mesh::MaterialId::Liner).name, "SiO2");
  EXPECT_EQ(table.at(mesh::MaterialId::Organic).name, "organic");
  EXPECT_THROW(table.at(static_cast<mesh::MaterialId>(9)), std::out_of_range);
}

TEST(MaterialTable, CopperExpandsMoreThanSilicon) {
  // The physical driver of TSV stress: CTE mismatch Cu >> Si.
  EXPECT_GT(copper().cte, 5.0 * silicon().cte);
  EXPECT_LT(sio2_liner().cte, silicon().cte);
}

}  // namespace
}  // namespace ms::fem
