#include "fem/assembler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/grading.hpp"
#include "mesh/tsv_block.hpp"

namespace ms::fem {
namespace {

mesh::HexMesh box_mesh(int nx, int ny, int nz, double lx = 1.0, double ly = 1.0, double lz = 1.0) {
  return mesh::HexMesh(mesh::uniform_coords(0.0, lx, nx), mesh::uniform_coords(0.0, ly, ny),
                       mesh::uniform_coords(0.0, lz, nz));
}

TEST(Assembler, SystemShape) {
  const mesh::HexMesh m = box_mesh(2, 2, 2);
  const AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  EXPECT_EQ(sys.num_dofs, 3 * m.num_nodes());
  EXPECT_EQ(sys.stiffness.rows(), sys.num_dofs);
  EXPECT_EQ(static_cast<idx_t>(sys.thermal_load.size()), sys.num_dofs);
}

TEST(Assembler, StiffnessIsSymmetric) {
  const mesh::HexMesh m = box_mesh(3, 2, 2);
  const AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  EXPECT_LT(sys.stiffness.symmetry_error(), 1e-8);
}

TEST(Assembler, RigidTranslationInKernel) {
  const mesh::HexMesh m = box_mesh(3, 3, 2);
  const AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  for (int c = 0; c < 3; ++c) {
    Vec t(sys.num_dofs, 0.0);
    for (idx_t node = 0; node < m.num_nodes(); ++node) t[dof_of(node, c)] = 1.0;
    Vec kt;
    sys.stiffness.mul(t, kt);
    EXPECT_LT(la::norm_inf(kt), 1e-7) << "component " << c;
  }
}

TEST(Assembler, ThermalLoadIsSelfEquilibrated) {
  const mesh::HexMesh m = box_mesh(3, 2, 4, 2.0, 1.0, 3.0);
  const AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  for (int c = 0; c < 3; ++c) {
    double net = 0.0;
    for (idx_t node = 0; node < m.num_nodes(); ++node) net += sys.thermal_load[dof_of(node, c)];
    EXPECT_NEAR(net, 0.0, 1e-8);
  }
}

TEST(Assembler, ThermalLoadOnlyPathMatchesFullAssembly) {
  mesh::HexMesh m = box_mesh(3, 3, 2);
  m.set_material(0, mesh::MaterialId::Copper);
  m.set_material(3, mesh::MaterialId::Liner);
  const MaterialTable table = MaterialTable::standard();
  const AssembledSystem sys = assemble_system(m, table);
  const Vec load = assemble_thermal_load(m, table);
  EXPECT_LT(la::max_abs_diff(sys.thermal_load, load), 1e-12);
}

TEST(Assembler, MixedMaterialsChangeStiffness) {
  mesh::HexMesh soft = box_mesh(2, 2, 2);
  mesh::HexMesh hard = box_mesh(2, 2, 2);
  hard.set_material(0, mesh::MaterialId::Copper);
  const MaterialTable table = MaterialTable::standard();
  const AssembledSystem a = assemble_system(soft, table);
  const AssembledSystem b = assemble_system(hard, table);
  // Same sparsity, different values.
  EXPECT_EQ(a.stiffness.nnz(), b.stiffness.nnz());
  double diff = 0.0;
  for (std::size_t k = 0; k < a.stiffness.values().size(); ++k) {
    diff = std::max(diff, std::fabs(a.stiffness.values()[k] - b.stiffness.values()[k]));
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Assembler, StencilPatternHas81ColumnsInterior) {
  const mesh::HexMesh m = box_mesh(4, 4, 4);
  const AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  // An interior node couples with its full 3x3x3 neighborhood x 3 components.
  const idx_t interior = m.node_id(2, 2, 2);
  const idx_t row = dof_of(interior, 0);
  EXPECT_EQ(sys.stiffness.row_ptr()[row + 1] - sys.stiffness.row_ptr()[row], 81);
  // A corner node couples with 2x2x2 x 3 = 24 columns.
  const idx_t corner_row = dof_of(m.node_id(0, 0, 0), 1);
  EXPECT_EQ(sys.stiffness.row_ptr()[corner_row + 1] - sys.stiffness.row_ptr()[corner_row], 24);
}

TEST(Assembler, TsvBlockAssembles) {
  const mesh::TsvGeometry g{15.0, 5.0, 0.5, 50.0};
  const mesh::HexMesh m = mesh::build_tsv_block_mesh(g, {8, 4});
  const AssembledSystem sys = assemble_system(m, MaterialTable::standard());
  EXPECT_LT(sys.stiffness.symmetry_error(), 1e-7);
  EXPECT_GT(la::norm_inf(sys.thermal_load), 0.0);
}

}  // namespace
}  // namespace ms::fem
