// ModelCache single-flight semantics under failure: a throwing builder must
// clear its pending slot (never poison it) so waiters race to claim the
// retry — the same protocol la::FactorCache keeps, proved here for the
// model cache the sweep engine shares across workers.

#include "rom/model_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ms::rom {
namespace {

ModelCache::ModelPtr make_model() { return std::make_shared<const RomModel>(); }

TEST(ModelCache, MissBuildsThenHitsShareOneModel) {
  ModelCache cache;
  const ModelCache::ModelPtr first = cache.get_or_create("k", make_model);
  const ModelCache::ModelPtr second = cache.get_or_create("k", make_model);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ModelCache, ThrowingBuilderClearsSlotForRetry) {
  ModelCache cache;
  EXPECT_THROW(cache.get_or_create("k",
                                   []() -> ModelCache::ModelPtr {
                                     throw std::runtime_error("local stage failed");
                                   }),
               std::runtime_error);
  EXPECT_FALSE(cache.contains("k"));
  const ModelCache::ModelPtr model = cache.get_or_create("k", make_model);
  EXPECT_NE(model, nullptr);
  EXPECT_TRUE(cache.contains("k"));
}

TEST(ModelCache, WaitersRetryAfterBuilderFailure) {
  // Contention on one key whose first build throws: one thread observes the
  // exception, exactly one waiter rebuilds, everyone else shares the entry.
  ModelCache cache;
  std::atomic<int> attempts{0};
  std::atomic<int> exceptions{0};
  std::atomic<int> successes{0};
  constexpr int kThreads = 8;
  std::vector<const RomModel*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        const ModelCache::ModelPtr model = cache.get_or_create("shared", [&] {
          if (attempts.fetch_add(1) == 0) throw std::runtime_error("injected build failure");
          return make_model();
        });
        successes.fetch_add(1);
        seen[static_cast<std::size_t>(t)] = model.get();
      } catch (const std::runtime_error&) {
        exceptions.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(exceptions.load(), 1);
  EXPECT_EQ(successes.load(), kThreads - 1);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 2));
  EXPECT_EQ(cache.size(), 1u);
  const RomModel* shared = nullptr;
  for (const RomModel* model : seen) {
    if (model == nullptr) continue;
    if (shared == nullptr) shared = model;
    EXPECT_EQ(model, shared);
  }
  EXPECT_NE(shared, nullptr);
}

}  // namespace
}  // namespace ms::rom
