#include "rom/block_grid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ms::rom {
namespace {

TEST(BlockGrid, SingleBlockEqualsSurfaceNodeSet) {
  const BlockGrid grid(1, 1, 4, 4, 4, 15.0, 50.0);
  const SurfaceNodeSet sns(4, 4, 4, 15.0, 15.0, 50.0);
  EXPECT_EQ(grid.num_nodes(), sns.count());
  EXPECT_EQ(grid.num_dofs(), sns.num_dofs());
  const auto dofs = grid.block_dofs(0, 0);
  EXPECT_EQ(static_cast<idx_t>(dofs.size()), sns.num_dofs());
  // For a single block the scatter is the identity in surface-node order.
  for (idx_t m = 0; m < sns.count(); ++m) {
    EXPECT_EQ(dofs[3 * m] % 3, 0);
  }
}

TEST(BlockGrid, SharedFaceNodesAreShared) {
  const BlockGrid grid(2, 1, 3, 3, 3, 10.0, 20.0);
  const auto left = grid.block_dofs(0, 0);
  const auto right = grid.block_dofs(1, 0);
  // Count common dofs: the shared face has ny*nz nodes = 9 -> 27 dofs.
  std::set<idx_t> l(left.begin(), left.end());
  idx_t shared = 0;
  for (idx_t d : right) shared += l.count(d);
  EXPECT_EQ(shared, 27);
}

TEST(BlockGrid, NodeCountMatchesInclusionExclusion) {
  // For a 2x2 grid of (3,3,3) blocks: lattice 5x5x3 minus interior nodes of
  // each block (1 per block at (odd,odd,middle)).
  const BlockGrid grid(2, 2, 3, 3, 3, 10.0, 20.0);
  EXPECT_EQ(grid.grid_x(), 5);
  EXPECT_EQ(grid.grid_y(), 5);
  EXPECT_EQ(grid.grid_z(), 3);
  EXPECT_EQ(grid.num_nodes(), 5 * 5 * 3 - 4);
}

TEST(BlockGrid, InteriorLatticePointsExcluded) {
  const BlockGrid grid(2, 2, 4, 4, 4, 15.0, 50.0);
  EXPECT_EQ(grid.node_at(1, 1, 1), -1);  // strictly inside block (0,0)
  EXPECT_GE(grid.node_at(0, 1, 1), 0);   // on the x=0 face
  EXPECT_GE(grid.node_at(3, 1, 1), 0);   // on the shared block face
  EXPECT_GE(grid.node_at(1, 1, 0), 0);   // on the bottom face
}

TEST(BlockGrid, NodePositionsScaleWithPitchAndHeight) {
  const BlockGrid grid(2, 1, 4, 4, 4, 15.0, 50.0);
  const idx_t node = grid.node_at(3, 0, 3);  // block boundary in x, top face
  ASSERT_GE(node, 0);
  const mesh::Point3 p = grid.node_position(node);
  EXPECT_DOUBLE_EQ(p.x, 15.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
  EXPECT_DOUBLE_EQ(p.z, 50.0);
}

TEST(BlockGrid, BlockDofsMatchSurfaceOrdering) {
  const BlockGrid grid(2, 2, 3, 3, 3, 10.0, 20.0);
  const SurfaceNodeSet& sns = grid.surface_nodes();
  const auto dofs = grid.block_dofs(1, 1);
  for (idx_t m = 0; m < sns.count(); ++m) {
    const auto& [i, j, k] = sns.node_ijk(m);
    const idx_t gnode = grid.node_at(2 + i, 2 + j, k);
    ASSERT_GE(gnode, 0);
    EXPECT_EQ(dofs[3 * m], 3 * gnode);
    EXPECT_EQ(dofs[3 * m + 2], 3 * gnode + 2);
  }
}

TEST(BlockGrid, TopBottomNodeSet) {
  const BlockGrid grid(2, 2, 3, 3, 3, 10.0, 20.0);
  const auto tb = grid.nodes_top_bottom();
  // Top and bottom faces are full 5x5 lattices.
  EXPECT_EQ(tb.size(), 2u * 25u);
  for (idx_t node : tb) {
    const mesh::Point3 p = grid.node_position(node);
    EXPECT_TRUE(p.z == 0.0 || p.z == 20.0);
  }
}

TEST(BlockGrid, OuterBoundaryContainsTopBottom) {
  const BlockGrid grid(3, 2, 3, 3, 4, 10.0, 30.0);
  const auto outer = grid.nodes_outer_boundary();
  const auto tb = grid.nodes_top_bottom();
  std::set<idx_t> outer_set(outer.begin(), outer.end());
  for (idx_t node : tb) EXPECT_TRUE(outer_set.count(node)) << node;
  EXPECT_GT(outer.size(), tb.size());  // side faces add nodes
}

TEST(BlockGrid, RejectsBadArguments) {
  EXPECT_THROW(BlockGrid(0, 1, 3, 3, 3, 1.0, 1.0), std::invalid_argument);
  const BlockGrid grid(2, 2, 3, 3, 3, 10.0, 20.0);
  EXPECT_THROW(grid.block_dofs(2, 0), std::out_of_range);
}

}  // namespace
}  // namespace ms::rom
