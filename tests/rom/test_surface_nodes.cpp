#include "rom/surface_nodes.hpp"

#include <gtest/gtest.h>

namespace ms::rom {
namespace {

class SurfaceNodeCounts : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SurfaceNodeCounts, MatchesEq16) {
  const auto [nx, ny, nz] = GetParam();
  const SurfaceNodeSet sns(nx, ny, nz, 1.0, 1.0, 1.0);
  const idx_t expected = nx * ny * nz - std::max(0, (nx - 2) * (ny - 2) * (nz - 2));
  EXPECT_EQ(sns.count(), expected);
  EXPECT_EQ(sns.num_dofs(), 3 * expected);
}

INSTANTIATE_TEST_SUITE_P(PaperTable3, SurfaceNodeCounts,
                         ::testing::Values(std::make_tuple(2, 2, 2), std::make_tuple(3, 3, 3),
                                           std::make_tuple(4, 4, 4), std::make_tuple(5, 5, 5),
                                           std::make_tuple(6, 6, 6), std::make_tuple(4, 3, 5)));

TEST(SurfaceNodes, PaperDofCounts) {
  // Table 3 of the paper: n = 24, 78, 168, 294, 456 element DoFs.
  EXPECT_EQ(SurfaceNodeSet(2, 2, 2, 1, 1, 1).num_dofs(), 24);
  EXPECT_EQ(SurfaceNodeSet(3, 3, 3, 1, 1, 1).num_dofs(), 78);
  EXPECT_EQ(SurfaceNodeSet(4, 4, 4, 1, 1, 1).num_dofs(), 168);
  EXPECT_EQ(SurfaceNodeSet(5, 5, 5, 1, 1, 1).num_dofs(), 294);
  EXPECT_EQ(SurfaceNodeSet(6, 6, 6, 1, 1, 1).num_dofs(), 456);
}

TEST(SurfaceNodes, IndexRoundTrip) {
  const SurfaceNodeSet sns(4, 4, 4, 15.0, 15.0, 50.0);
  for (idx_t m = 0; m < sns.count(); ++m) {
    const auto& [i, j, k] = sns.node_ijk(m);
    EXPECT_TRUE(sns.is_surface(i, j, k));
    EXPECT_EQ(sns.index_of(i, j, k), m);
  }
  // An interior node has no surface index.
  EXPECT_EQ(sns.index_of(1, 1, 1), -1);
  EXPECT_EQ(sns.index_of(2, 2, 2), -1);
}

TEST(SurfaceNodes, OrderingIsLexicographic) {
  const SurfaceNodeSet sns(3, 3, 3, 1.0, 1.0, 1.0);
  // First node is (0,0,0); ordering increases i fastest.
  EXPECT_EQ(sns.node_ijk(0)[0], 0);
  EXPECT_EQ(sns.node_ijk(0)[1], 0);
  EXPECT_EQ(sns.node_ijk(0)[2], 0);
  for (idx_t m = 1; m < sns.count(); ++m) {
    const auto& a = sns.node_ijk(m - 1);
    const auto& b = sns.node_ijk(m);
    const int key_a = (a[2] * 3 + a[1]) * 3 + a[0];
    const int key_b = (b[2] * 3 + b[1]) * 3 + b[0];
    EXPECT_LT(key_a, key_b);
  }
}

TEST(SurfaceNodes, PositionsSpanTheBlock) {
  const SurfaceNodeSet sns(4, 4, 4, 15.0, 15.0, 50.0);
  const mesh::Point3 p0 = sns.position(0);
  EXPECT_DOUBLE_EQ(p0.x, 0.0);
  EXPECT_DOUBLE_EQ(p0.z, 0.0);
  const mesh::Point3 plast = sns.position(sns.count() - 1);
  EXPECT_DOUBLE_EQ(plast.x, 15.0);
  EXPECT_DOUBLE_EQ(plast.y, 15.0);
  EXPECT_DOUBLE_EQ(plast.z, 50.0);
}

TEST(SurfaceNodes, WeightIsKroneckerAtNodes) {
  const SurfaceNodeSet sns(4, 4, 3, 2.0, 2.0, 1.0);
  for (idx_t m = 0; m < sns.count(); ++m) {
    for (idx_t l = 0; l < sns.count(); ++l) {
      EXPECT_NEAR(sns.weight(sns.position(m), l), m == l ? 1.0 : 0.0, 1e-11);
    }
  }
}

TEST(SurfaceNodes, MinimumCaseAllCorners) {
  const SurfaceNodeSet sns(2, 2, 2, 1.0, 1.0, 1.0);
  EXPECT_EQ(sns.count(), 8);
  EXPECT_THROW(SurfaceNodeSet(1, 2, 2, 1.0, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ms::rom
