#include "rom/rom_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace ms::rom {
namespace {

RomModel tiny_model() {
  RomModel m;
  m.kind = BlockKind::Dummy;
  m.geometry = {15.0, 5.0, 0.5, 50.0};
  m.mesh_spec = {8, 4};
  m.nodes_x = 3;
  m.nodes_y = 3;
  m.nodes_z = 2;
  m.samples_per_block = 2;
  m.fine_mesh_dofs = 1234;
  m.local_stage_seconds = 0.5;
  const idx_t n = m.num_element_dofs();
  m.element_stiffness = DenseMatrix(n, n);
  for (idx_t i = 0; i < n; ++i) m.element_stiffness(i, i) = 1.0 + i;
  m.element_load.assign(n, 0.25);
  m.stress_samples = DenseMatrix(6 * 4, n + 1, 0.125);
  m.displacement_samples = DenseMatrix(3 * 4, n + 1, -0.5);
  return m;
}

TEST(RomModel, ElementDofCount) {
  RomModel m;
  m.nodes_x = 4;
  m.nodes_y = 4;
  m.nodes_z = 4;
  EXPECT_EQ(m.num_element_dofs(), 168);
  m.nodes_z = 2;
  EXPECT_EQ(m.num_element_dofs(), 3 * 4 * 4 * 2);
}

TEST(RomModel, SaveLoadRoundTrip) {
  const RomModel original = tiny_model();
  const std::string path = std::filesystem::temp_directory_path() / "ms_rom_test.bin";
  original.save(path);
  const RomModel loaded = RomModel::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.kind, original.kind);
  EXPECT_DOUBLE_EQ(loaded.geometry.pitch, original.geometry.pitch);
  EXPECT_EQ(loaded.mesh_spec.elems_xy, original.mesh_spec.elems_xy);
  EXPECT_EQ(loaded.nodes_x, original.nodes_x);
  EXPECT_EQ(loaded.samples_per_block, original.samples_per_block);
  EXPECT_EQ(loaded.fine_mesh_dofs, original.fine_mesh_dofs);
  EXPECT_DOUBLE_EQ(loaded.local_stage_seconds, original.local_stage_seconds);
  EXPECT_EQ(loaded.element_stiffness.rows(), original.element_stiffness.rows());
  EXPECT_LT(loaded.element_stiffness.frobenius_diff(original.element_stiffness), 1e-15);
  EXPECT_EQ(loaded.element_load, original.element_load);
  EXPECT_LT(loaded.stress_samples.frobenius_diff(original.stress_samples), 1e-15);
  EXPECT_LT(loaded.displacement_samples.frobenius_diff(original.displacement_samples), 1e-15);
}

TEST(RomModel, LoadRejectsMissingAndCorrupt) {
  EXPECT_THROW(RomModel::load("/nonexistent/path.bin"), std::runtime_error);
  const std::string path = std::filesystem::temp_directory_path() / "ms_rom_corrupt.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a rom model", f);
    std::fclose(f);
  }
  EXPECT_THROW(RomModel::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(RomModel, CompatibilityChecks) {
  const RomModel a = tiny_model();
  RomModel b = tiny_model();
  EXPECT_TRUE(a.compatible_with(b));
  b.nodes_x = 4;
  EXPECT_FALSE(a.compatible_with(b));
  b = tiny_model();
  b.geometry.pitch = 10.0;
  EXPECT_FALSE(a.compatible_with(b));
  b = tiny_model();
  b.mesh_spec.elems_z = 9;
  EXPECT_FALSE(a.compatible_with(b));
}

TEST(RomModel, MemoryBytesCountsPayloads) {
  const RomModel m = tiny_model();
  const std::size_t expected =
      (m.element_stiffness.data().size() + m.stress_samples.data().size() +
       m.displacement_samples.data().size() + m.element_load.size()) *
      sizeof(double);
  EXPECT_EQ(m.memory_bytes(), expected);
}

TEST(RomModel, SurfaceNodesMatchConfiguration) {
  const RomModel m = tiny_model();
  const SurfaceNodeSet sns = m.surface_nodes();
  EXPECT_EQ(sns.num_dofs(), m.num_element_dofs());
}

}  // namespace
}  // namespace ms::rom
