#include <gtest/gtest.h>

#include <cmath>

#include "rom/global_assembler.hpp"
#include "rom/global_solver.hpp"
#include "rom/local_stage.hpp"
#include "rom/reconstruct.hpp"

namespace ms::rom {
namespace {

mesh::TsvGeometry geometry() { return {15.0, 5.0, 0.5, 50.0}; }
mesh::BlockMeshSpec spec() { return {6, 3}; }

const fem::MaterialTable& table() {
  static const fem::MaterialTable t = fem::MaterialTable::standard();
  return t;
}

const RomModel& tsv_model() {
  static const RomModel m = [] {
    LocalStageOptions options;
    options.nodes_x = options.nodes_y = options.nodes_z = 3;
    options.samples_per_block = 10;
    return run_local_stage(geometry(), spec(), table(), BlockKind::Tsv, options);
  }();
  return m;
}

const RomModel& dummy_model() {
  static const RomModel m = [] {
    LocalStageOptions options;
    options.nodes_x = options.nodes_y = options.nodes_z = 3;
    options.samples_per_block = 10;
    return run_local_stage(geometry(), spec(), table(), BlockKind::Dummy, options);
  }();
  return m;
}

BlockGrid make_grid(int bx, int by) { return BlockGrid(bx, by, 3, 3, 3, 15.0, 50.0); }

TEST(GlobalAssembler, SystemShapeAndSymmetry) {
  const BlockGrid grid = make_grid(2, 2);
  GlobalProblem problem = assemble_global(grid, tsv_model(), nullptr, {}, -250.0);
  EXPECT_EQ(problem.num_dofs, grid.num_dofs());
  EXPECT_EQ(problem.stiffness.rows(), grid.num_dofs());
  EXPECT_LT(problem.stiffness.symmetry_error(), 1e-6);
}

TEST(GlobalAssembler, LoadScalesWithThermalLoad) {
  const BlockGrid grid = make_grid(2, 1);
  const GlobalProblem p1 = assemble_global(grid, tsv_model(), nullptr, {}, -100.0);
  const GlobalProblem p2 = assemble_global(grid, tsv_model(), nullptr, {}, -200.0);
  for (std::size_t i = 0; i < p1.rhs.size(); ++i) {
    EXPECT_NEAR(p2.rhs[i], 2.0 * p1.rhs[i], 1e-9);
  }
}

TEST(GlobalAssembler, MaskRequiresDummyModel) {
  const BlockGrid grid = make_grid(2, 2);
  const BlockMask mask{1, 0, 0, 1};
  EXPECT_THROW(assemble_global(grid, tsv_model(), nullptr, mask, -250.0), std::invalid_argument);
  EXPECT_NO_THROW(assemble_global(grid, tsv_model(), &dummy_model(), mask, -250.0));
}

TEST(GlobalAssembler, RejectsBadMaskSize) {
  const BlockGrid grid = make_grid(2, 2);
  EXPECT_THROW(assemble_global(grid, tsv_model(), &dummy_model(), {1, 0}, -250.0),
               std::invalid_argument);
}

TEST(GlobalSolver, CgGmresDirectAgree) {
  const BlockGrid grid = make_grid(3, 2);
  const fem::DirichletBc bc = clamp_top_bottom(grid);

  GlobalSolveOptions cg;
  cg.method = "cg";
  cg.rel_tol = 1e-12;
  GlobalSolveOptions gm;
  gm.method = "gmres";
  gm.rel_tol = 1e-12;
  GlobalSolveOptions direct;
  direct.method = "direct";

  GlobalProblem p1 = assemble_global(grid, tsv_model(), nullptr, {}, -250.0);
  GlobalProblem p2 = assemble_global(grid, tsv_model(), nullptr, {}, -250.0);
  GlobalProblem p3 = assemble_global(grid, tsv_model(), nullptr, {}, -250.0);
  const Vec u_cg = solve_global(p1, bc, cg);
  const Vec u_gm = solve_global(p2, bc, gm);
  const Vec u_dir = solve_global(p3, bc, direct);

  const double scale = la::norm_inf(u_dir);
  EXPECT_GT(scale, 0.0);
  EXPECT_LT(la::max_abs_diff(u_cg, u_dir), 1e-6 * scale);
  EXPECT_LT(la::max_abs_diff(u_gm, u_dir), 1e-6 * scale);
}

TEST(GlobalSolver, ClampedDofsStayZero) {
  const BlockGrid grid = make_grid(2, 2);
  GlobalProblem problem = assemble_global(grid, tsv_model(), nullptr, {}, -250.0);
  const fem::DirichletBc bc = clamp_top_bottom(grid);
  GlobalSolveStats stats;
  const Vec u = solve_global(problem, bc, {}, &stats);
  EXPECT_TRUE(stats.converged);
  for (idx_t node : grid.nodes_top_bottom()) {
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(u[3 * node + c], 0.0, 1e-12);
  }
  // Mid-height nodes move (Poisson pinch of the clamped array).
  double max_mid = 0.0;
  for (idx_t d = 0; d < grid.num_dofs(); ++d) max_mid = std::max(max_mid, std::fabs(u[d]));
  EXPECT_GT(max_mid, 1e-4);
}

TEST(GlobalSolver, SubmodelBoundaryInterpolatesCallback) {
  const BlockGrid grid = make_grid(2, 1);
  // Linear displacement field: u = (ax, by, cz).
  const auto field = [](const mesh::Point3& p) {
    return std::array<double, 3>{1e-3 * p.x, -2e-3 * p.y, 5e-4 * p.z};
  };
  const std::function<std::array<double, 3>(const mesh::Point3&)> fn = field;
  const fem::DirichletBc bc = submodel_boundary(grid, fn);
  EXPECT_EQ(bc.size(), 3 * grid.nodes_outer_boundary().size());
  // Spot-check values.
  const auto nodes = grid.nodes_outer_boundary();
  for (std::size_t i = 0; i < nodes.size(); i += 7) {
    const mesh::Point3 p = grid.node_position(nodes[i]);
    EXPECT_DOUBLE_EQ(bc.values[3 * i], 1e-3 * p.x);
    EXPECT_DOUBLE_EQ(bc.values[3 * i + 1], -2e-3 * p.y);
  }
}

TEST(Reconstruct, RegionShapesAndSubregion) {
  const BlockGrid grid = make_grid(3, 3);
  GlobalProblem problem = assemble_global(grid, tsv_model(), nullptr, {}, -250.0);
  const Vec u = solve_global(problem, clamp_top_bottom(grid), {});
  const int s = tsv_model().samples_per_block;

  const auto full = reconstruct_plane_von_mises(grid, tsv_model(), nullptr, {}, u, -250.0,
                                                BlockRange::all(grid));
  EXPECT_EQ(full.size(), static_cast<std::size_t>(9) * s * s);

  BlockRange inner{1, 2, 1, 2};
  const auto centre = reconstruct_plane_von_mises(grid, tsv_model(), nullptr, {}, u, -250.0, inner);
  EXPECT_EQ(centre.size(), static_cast<std::size_t>(s) * s);

  // The inner block of the full field equals the subregion reconstruction.
  for (int my = 0; my < s; ++my) {
    for (int mx = 0; mx < s; ++mx) {
      const std::size_t full_idx = (static_cast<std::size_t>(s) + my) * (3 * s) + s + mx;
      EXPECT_NEAR(centre[static_cast<std::size_t>(my) * s + mx], full[full_idx], 1e-12);
    }
  }
}

TEST(Reconstruct, FourFoldSymmetryOfCentredArray) {
  // A centred 3x3 array under uniform load must produce a stress field with
  // the symmetry of the square (sample the centre block). Use a sample count
  // whose cell centres avoid element faces: stress is discontinuous across
  // faces and locate() tie-breaks to the +x element, which would make
  // mirrored samples land in different elements.
  LocalStageOptions options;
  options.nodes_x = options.nodes_y = options.nodes_z = 3;
  options.samples_per_block = 8;
  const RomModel model = run_local_stage(geometry(), spec(), table(), BlockKind::Tsv, options);

  const BlockGrid grid = make_grid(3, 3);
  GlobalProblem problem = assemble_global(grid, model, nullptr, {}, -250.0);
  const Vec u = solve_global(problem, clamp_top_bottom(grid), {});
  const int s = model.samples_per_block;
  BlockRange inner{1, 2, 1, 2};
  const auto vm = reconstruct_plane_von_mises(grid, model, nullptr, {}, u, -250.0, inner);
  double max_v = 0.0;
  for (double v : vm) max_v = std::max(max_v, v);
  for (int my = 0; my < s; ++my) {
    for (int mx = 0; mx < s; ++mx) {
      const double a = vm[static_cast<std::size_t>(my) * s + mx];
      const double b = vm[static_cast<std::size_t>(mx) * s + my];                   // transpose
      const double c = vm[static_cast<std::size_t>(my) * s + (s - 1 - mx)];         // mirror x
      EXPECT_NEAR(a, b, 0.02 * max_v);
      EXPECT_NEAR(a, c, 0.02 * max_v);
    }
  }
}

TEST(Reconstruct, DisplacementRequiresSampling) {
  const BlockGrid grid = make_grid(2, 2);
  GlobalProblem problem = assemble_global(grid, tsv_model(), nullptr, {}, -250.0);
  const Vec u = solve_global(problem, clamp_top_bottom(grid), {});
  // tsv_model() was built with displacement sampling on (default) — works.
  EXPECT_NO_THROW(reconstruct_plane_displacement(grid, tsv_model(), nullptr, {}, u, -250.0,
                                                 BlockRange::all(grid)));
  // A model without displacement samples must throw.
  RomModel stripped = tsv_model();
  stripped.displacement_samples = la::DenseMatrix();
  EXPECT_THROW(reconstruct_plane_displacement(grid, stripped, nullptr, {}, u, -250.0,
                                              BlockRange::all(grid)),
               std::logic_error);
}

}  // namespace
}  // namespace ms::rom
