#include "rom/local_stage.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fem/assembler.hpp"
#include "fem/solver.hpp"

namespace ms::rom {
namespace {

mesh::TsvGeometry small_geometry() { return {15.0, 5.0, 0.5, 50.0}; }
mesh::BlockMeshSpec small_spec() { return {6, 3}; }

LocalStageOptions small_options(int nodes = 3) {
  LocalStageOptions options;
  options.nodes_x = options.nodes_y = options.nodes_z = nodes;
  options.samples_per_block = 8;
  return options;
}

const fem::MaterialTable& table() {
  static const fem::MaterialTable t = fem::MaterialTable::standard();
  return t;
}

TEST(LocalStage, ProducesConsistentShapes) {
  const RomModel m =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, small_options());
  const idx_t n = m.num_element_dofs();
  EXPECT_EQ(m.element_stiffness.rows(), n);
  EXPECT_EQ(m.element_stiffness.cols(), n);
  EXPECT_EQ(static_cast<idx_t>(m.element_load.size()), n);
  EXPECT_EQ(m.stress_samples.rows(), 6 * 8 * 8);
  EXPECT_EQ(m.stress_samples.cols(), n + 1);
  EXPECT_EQ(m.displacement_samples.rows(), 3 * 8 * 8);
  EXPECT_GT(m.fine_mesh_dofs, n);
  EXPECT_GT(m.local_stage_seconds, 0.0);
}

TEST(LocalStage, ElementStiffnessSymmetricPsd) {
  const RomModel m =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, small_options());
  EXPECT_LT(m.element_stiffness.symmetry_error(), 1e-6);
  // Rayleigh quotients nonnegative for a family of probe vectors (PSD: the
  // unconstrained block still has rigid-body modes).
  const idx_t n = m.element_stiffness.rows();
  for (int seed = 0; seed < 5; ++seed) {
    la::Vec x(n), ax;
    for (idx_t i = 0; i < n; ++i) x[i] = std::sin(0.7 * i + seed);
    m.element_stiffness.mul(x, ax);
    EXPECT_GT(la::dot(x, ax), -1e-6 * la::dot(x, x));
  }
}

TEST(LocalStage, RigidTranslationInElementKernel) {
  // A_elem must annihilate uniform translations of the surface nodes: the
  // basis reproduces rigid motion exactly (Lagrange reproduces constants).
  const RomModel m =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, small_options());
  const idx_t n = m.element_stiffness.rows();
  double scale = 0.0;
  for (idx_t i = 0; i < n; ++i) scale = std::max(scale, m.element_stiffness(i, i));
  for (int c = 0; c < 3; ++c) {
    la::Vec t(n, 0.0), at;
    for (idx_t i = c; i < n; i += 3) t[i] = 1.0;
    m.element_stiffness.mul(t, at);
    EXPECT_LT(la::norm_inf(at), 1e-8 * scale) << "component " << c;
  }
}

TEST(LocalStage, DummyBlockHasNoCopperSignature) {
  // The dummy (pure Si) block is stiffness-homogeneous: thermal load vector
  // of the uniform block is in equilibrium with zero boundary reactions only
  // if boundary displacement matches free expansion; its element load is
  // nonzero but the stress samples at DT with zero nodal motion must be
  // (near-)hydrostatic => tiny von Mises away from boundaries.
  const RomModel dummy =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Dummy, small_options());
  const RomModel tsv =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, small_options());
  // The TSV thermal column must differ strongly from the dummy's.
  const idx_t col = dummy.stress_samples.cols() - 1;
  double max_diff = 0.0;
  for (idx_t r = 0; r < dummy.stress_samples.rows(); ++r) {
    max_diff = std::max(max_diff,
                        std::fabs(dummy.stress_samples(r, col) - tsv.stress_samples(r, col)));
  }
  EXPECT_GT(max_diff, 0.1);
}

TEST(LocalStage, SampleDisplacementsOptional) {
  LocalStageOptions options = small_options();
  options.sample_displacements = false;
  const RomModel m =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, options);
  EXPECT_EQ(m.displacement_samples.rows(), 0);
}

TEST(LocalStage, RejectsTooFewNodes) {
  LocalStageOptions options = small_options();
  options.nodes_x = 1;
  EXPECT_THROW(run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, options),
               std::invalid_argument);
}

TEST(LocalStage, FinerInterpolationEnrichesModel) {
  const RomModel coarse =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, small_options(2));
  const RomModel fine =
      run_local_stage(small_geometry(), small_spec(), table(), BlockKind::Tsv, small_options(4));
  EXPECT_EQ(coarse.num_element_dofs(), 24);
  EXPECT_EQ(fine.num_element_dofs(), 168);
  EXPECT_GT(fine.element_stiffness.rows(), coarse.element_stiffness.rows());
}

}  // namespace
}  // namespace ms::rom
