#include "rom/lagrange.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ms::rom {
namespace {

TEST(EquispacedNodes, EndpointsAndSpacing) {
  const auto nodes = equispaced_nodes(0.0, 15.0, 4);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_DOUBLE_EQ(nodes[0], 0.0);
  EXPECT_DOUBLE_EQ(nodes[1], 5.0);
  EXPECT_DOUBLE_EQ(nodes[3], 15.0);
  EXPECT_THROW(equispaced_nodes(0.0, 1.0, 1), std::invalid_argument);
}

class Lagrange1dNodeCounts : public ::testing::TestWithParam<int> {};

TEST_P(Lagrange1dNodeCounts, KroneckerProperty) {
  const auto nodes = equispaced_nodes(0.0, 1.0, GetParam());
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    const auto values = lagrange_values(nodes, nodes[j]);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_NEAR(values[i], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST_P(Lagrange1dNodeCounts, PartitionOfUnity) {
  const auto nodes = equispaced_nodes(0.0, 1.0, GetParam());
  for (double x : {0.05, 0.33, 0.5, 0.71, 0.99}) {
    const auto values = lagrange_values(nodes, x);
    double sum = 0.0;
    for (double v : values) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-11);
  }
}

TEST_P(Lagrange1dNodeCounts, ReproducesPolynomialsUpToDegree) {
  const int n = GetParam();
  const auto nodes = equispaced_nodes(0.0, 2.0, n);
  // Interpolation with n nodes reproduces polynomials of degree n-1 exactly.
  for (int degree = 0; degree < n; ++degree) {
    for (double x : {0.1, 0.9, 1.7}) {
      const auto values = lagrange_values(nodes, x);
      double interp = 0.0;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        interp += values[i] * std::pow(nodes[i], degree);
      }
      EXPECT_NEAR(interp, std::pow(x, degree), 1e-10) << "n=" << n << " deg=" << degree;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, Lagrange1dNodeCounts, ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(Lagrange3d, TensorProductWeight) {
  const Lagrange3d l(equispaced_nodes(0.0, 1.0, 3), equispaced_nodes(0.0, 1.0, 3),
                     equispaced_nodes(0.0, 2.0, 2));
  // Weight at an interpolation node is a Kronecker delta over (i,j,k).
  EXPECT_NEAR(l.weight({0.5, 1.0, 2.0}, 1, 2, 1), 1.0, 1e-12);
  EXPECT_NEAR(l.weight({0.5, 1.0, 2.0}, 0, 2, 1), 0.0, 1e-12);
  EXPECT_NEAR(l.weight({0.5, 1.0, 2.0}, 1, 2, 0), 0.0, 1e-12);
}

TEST(Lagrange3d, FactorsMatchWeight) {
  const Lagrange3d l(equispaced_nodes(0.0, 1.0, 4), equispaced_nodes(0.0, 1.0, 3),
                     equispaced_nodes(0.0, 1.0, 2));
  const mesh::Point3 p{0.37, 0.81, 0.25};
  const auto f = l.factors(p);
  for (int i = 0; i < l.nx(); ++i) {
    for (int j = 0; j < l.ny(); ++j) {
      for (int k = 0; k < l.nz(); ++k) {
        EXPECT_NEAR(l.weight(p, i, j, k), f.wx[i] * f.wy[j] * f.wz[k], 1e-13);
      }
    }
  }
}

TEST(Lagrange3d, SurfaceEvaluationKillsOppositeFace) {
  // On the face z=0, only k=0 nodes contribute (paper Sec. 4.2: evaluating
  // the tensor basis on a face involves only same-face nodes).
  const Lagrange3d l(equispaced_nodes(0.0, 1.0, 4), equispaced_nodes(0.0, 1.0, 4),
                     equispaced_nodes(0.0, 1.0, 4));
  const mesh::Point3 on_bottom{0.3, 0.6, 0.0};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 1; k < 4; ++k) {
        EXPECT_NEAR(l.weight(on_bottom, i, j, k), 0.0, 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace ms::rom
