#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <filesystem>

#include "core/report.hpp"

namespace ms::core {
namespace {

SimulationConfig small_config(int nodes = 3) {
  SimulationConfig config = SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = nodes;
  config.local.samples_per_block = 10;
  return config;
}

TEST(Config, PaperDefaultMatchesSec52) {
  const SimulationConfig c = SimulationConfig::paper_default();
  EXPECT_DOUBLE_EQ(c.geometry.pitch, 15.0);
  EXPECT_DOUBLE_EQ(c.geometry.diameter, 5.0);
  EXPECT_DOUBLE_EQ(c.geometry.liner_thickness, 0.5);
  EXPECT_DOUBLE_EQ(c.geometry.height, 50.0);
  EXPECT_DOUBLE_EQ(c.thermal_load, -250.0);
  EXPECT_EQ(c.local.nodes_x, 4);
  EXPECT_EQ(c.local.samples_per_block, 100);
}

TEST(Simulator, LocalStageIsLazyAndCached) {
  MoreStressSimulator sim(small_config());
  const double first = sim.prepare_local_stage(false);
  EXPECT_GT(first, 0.0);
  const double second = sim.prepare_local_stage(false);
  EXPECT_DOUBLE_EQ(second, 0.0);
}

TEST(Simulator, ArrayResultShapesAndStats) {
  MoreStressSimulator sim(small_config());
  const ArrayResult result = sim.simulate_array(3, 2);
  EXPECT_EQ(result.region_blocks_x, 3);
  EXPECT_EQ(result.region_blocks_y, 2);
  EXPECT_EQ(result.samples_per_block, 10);
  EXPECT_EQ(result.von_mises.size(), static_cast<std::size_t>(3 * 10) * (2 * 10));
  EXPECT_EQ(result.stress.size(), result.von_mises.size());
  EXPECT_TRUE(result.stats.converged);
  EXPECT_GT(result.stats.global_dofs, 0);
  EXPECT_GT(result.stats.memory_bytes, 0u);
  EXPECT_GT(result.stats.global_seconds(), 0.0);
}

TEST(Simulator, DiskCacheRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "ms_rom_cache_test";
  std::filesystem::remove_all(dir);

  SimulationConfig config = small_config();
  MoreStressSimulator sim1(config);
  sim1.set_cache_directory(dir.string());
  (void)sim1.tsv_model();
  EXPECT_FALSE(std::filesystem::is_empty(dir));

  MoreStressSimulator sim2(config);
  sim2.set_cache_directory(dir.string());
  const rom::RomModel& loaded = sim2.tsv_model();
  EXPECT_LT(loaded.element_stiffness.frobenius_diff(sim1.tsv_model().element_stiffness), 1e-12);
  std::filesystem::remove_all(dir);
}

TEST(Simulator, SubmodelUsesDummyRingsAndReportsInnerRegion) {
  MoreStressSimulator sim(small_config());
  const auto linear = [](const mesh::Point3& p) {
    return std::array<double, 3>{1e-4 * p.x, 1e-4 * p.y, -2e-4 * p.z};
  };
  const ArrayResult result = sim.simulate_submodel(2, 2, 1, linear);
  EXPECT_EQ(result.region_blocks_x, 2);
  EXPECT_EQ(result.von_mises.size(), static_cast<std::size_t>(2 * 10) * (2 * 10));
  EXPECT_TRUE(result.stats.converged);
}

TEST(Simulator, SubmodelRejectsNegativeRings) {
  MoreStressSimulator sim(small_config());
  const auto zero = [](const mesh::Point3&) { return std::array<double, 3>{0, 0, 0}; };
  EXPECT_THROW(sim.simulate_submodel(2, 2, -1, zero), std::invalid_argument);
}

TEST(Simulator, StressScalesLinearlyWithThermalLoad) {
  SimulationConfig c1 = small_config();
  SimulationConfig c2 = small_config();
  c2.thermal_load = 2.0 * c1.thermal_load;
  MoreStressSimulator sim1(c1), sim2(c2);
  const auto r1 = sim1.simulate_array(2, 2);
  const auto r2 = sim2.simulate_array(2, 2);
  double max_vm = 0.0;
  for (double v : r1.von_mises) max_vm = std::max(max_vm, v);
  for (std::size_t i = 0; i < r1.von_mises.size(); ++i) {
    EXPECT_NEAR(r2.von_mises[i], 2.0 * r1.von_mises[i], 1e-5 * max_vm);
  }
}

TEST(ReferenceHelpers, ArrayReferenceMatchesShapes) {
  const SimulationConfig config = small_config();
  fem::FemSolveOptions options;
  options.method = "direct";
  const ReferenceResult ref = reference_array(config, 2, 2, options);
  EXPECT_EQ(ref.von_mises.size(), static_cast<std::size_t>(2 * 10) * (2 * 10));
  EXPECT_GT(ref.stats.num_dofs, 0);

  MoreStressSimulator sim(config);
  const ArrayResult rom = sim.simulate_array(2, 2);
  const double err = field_error(ref, rom.von_mises);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 0.10);  // (3,3,3) nodes on a 2x2 array: coarse but sane
}

}  // namespace
}  // namespace ms::core
