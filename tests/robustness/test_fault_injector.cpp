// util::FaultInjector unit locks: rule grammar, deterministic seeded
// probability rolls, fire budgets, and the action split (throw/stall act
// inside fire(), nan/spd are returned for the caller to apply).

#include "util/fault_injector.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

namespace ms::util {
namespace {

/// Configure the global injector for one test and always clear it after —
/// the injector is process-wide and later suites must see it disabled.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) { FaultInjector::global().configure(spec); }
  ~FaultGuard() { FaultInjector::global().reset(); }
};

TEST(FaultInjector, DisabledByDefaultAndAfterReset) {
  FaultInjector::global().reset();
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_EQ(FaultInjector::global().consume("any.site"), FaultAction::kNone);
  {
    FaultGuard guard("some.site:throw");
    EXPECT_TRUE(FaultInjector::enabled());
  }
  EXPECT_FALSE(FaultInjector::enabled());
}

TEST(FaultInjector, GrammarRejectsMalformedRules) {
  FaultInjector& injector = FaultInjector::global();
  EXPECT_THROW(injector.configure("siteonly"), std::invalid_argument);
  EXPECT_THROW(injector.configure("site:explode"), std::invalid_argument);
  EXPECT_THROW(injector.configure("site:throw:1.5"), std::invalid_argument);
  EXPECT_THROW(injector.configure("site:throw:-0.1"), std::invalid_argument);
  EXPECT_THROW(injector.configure("site:throw:1:1:50:extra"), std::invalid_argument);
  injector.reset();
}

TEST(FaultInjector, GrammarAcceptsMultipleRulesAndSeparators) {
  FaultGuard guard("a.site:throw:0.5;b.site:nan:1:2, c.site:stall:1:1:10");
  FaultInjector& injector = FaultInjector::global();
  // b.site has probability 1 and a budget of 2 fires.
  EXPECT_EQ(injector.consume("b.site"), FaultAction::kNan);
  EXPECT_EQ(injector.consume("b.site"), FaultAction::kNan);
  EXPECT_EQ(injector.consume("b.site"), FaultAction::kNone);  // budget spent
  EXPECT_EQ(injector.fired_count("b.site"), 2u);
  EXPECT_EQ(injector.consume("unknown.site"), FaultAction::kNone);
}

TEST(FaultInjector, ThrowActionThrowsFromFireWithSiteName) {
  FaultGuard guard("cache.build:throw:1:1");
  FaultInjector& injector = FaultInjector::global();
  try {
    injector.fire("cache.build");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& fault) {
    EXPECT_EQ(fault.site(), "cache.build");
  }
  // Budget of one: the site is spent, later fires are no-ops.
  EXPECT_EQ(injector.fire("cache.build"), FaultAction::kNone);
  EXPECT_EQ(injector.fired_count("cache.build"), 1u);
}

TEST(FaultInjector, NanAndSpdAreReturnedNotActed) {
  FaultGuard guard("solve.out:nan;factor.pivot:spd");
  FaultInjector& injector = FaultInjector::global();
  EXPECT_EQ(injector.fire("solve.out"), FaultAction::kNan);   // no throw
  EXPECT_EQ(injector.fire("factor.pivot"), FaultAction::kSpd);
}

TEST(FaultInjector, StallActionSleepsForConfiguredMillis) {
  FaultGuard guard("slow.site:stall:1:1:60");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(FaultInjector::global().fire("slow.site"), FaultAction::kStall);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 50);
}

TEST(FaultInjector, ProbabilityRollsAreDeterministicUnderSeed) {
  const std::string spec = "coin.flip:nan:0.5";
  const auto roll_sequence = [&] {
    FaultInjector& injector = FaultInjector::global();
    injector.configure(spec);
    injector.seed(12345);
    std::vector<FaultAction> seq;
    seq.reserve(200);
    for (int i = 0; i < 200; ++i) seq.push_back(injector.consume("coin.flip"));
    return seq;
  };
  const std::vector<FaultAction> first = roll_sequence();
  const std::vector<FaultAction> second = roll_sequence();
  FaultInjector::global().reset();
  EXPECT_EQ(first, second);  // bitwise-reproducible fault schedule

  int fired = 0;
  for (FaultAction action : first) fired += action == FaultAction::kNan ? 1 : 0;
  EXPECT_GT(fired, 50);   // a fair-ish coin, not all-or-nothing
  EXPECT_LT(fired, 150);
}

}  // namespace
}  // namespace ms::util
