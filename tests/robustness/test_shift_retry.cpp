// la::factor_with_shift_retry: clean SPD matrices factor unshifted, an
// injected pivot breakdown drives the escalating diagonal-shift ladder, and
// a genuinely indefinite operator that no ladder shift can rescue still
// fails with the classified NotPositiveDefiniteError.

#include "la/shift_retry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/errors.hpp"
#include "util/fault_injector.hpp"

namespace ms::la {
namespace {

CsrMatrix spd_tridiagonal(idx_t n) {
  TripletList t(n, n);
  for (idx_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  return CsrMatrix::from_triplets(t);
}

TEST(ShiftRetry, CleanMatrixFactorsWithoutShift) {
  util::FaultInjector::global().reset();
  const CsrMatrix a = spd_tridiagonal(12);
  const ShiftRetryResult result = factor_with_shift_retry(a, {}, {}, "test.factor");
  ASSERT_NE(result.factor, nullptr);
  EXPECT_EQ(result.shift, 0.0);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_FALSE(result.degraded());
}

TEST(ShiftRetry, InjectedBreakdownEscalatesToFirstWorkingShift) {
  util::FaultInjector::global().configure("test.factor:spd:1:1");
  const CsrMatrix a = spd_tridiagonal(12);
  const ShiftRetryResult result = factor_with_shift_retry(a, {}, {}, "test.factor");
  util::FaultInjector::global().reset();

  // The matrix itself is SPD, so the very first ladder rung succeeds:
  // shift = initial_scale * ||diag||_inf = 1e-12 * 4. Attempts counts the
  // (simulated) clean try plus the one shifted refactorization.
  ASSERT_NE(result.factor, nullptr);
  EXPECT_TRUE(result.degraded());
  EXPECT_DOUBLE_EQ(result.shift, 1e-12 * 4.0);
  EXPECT_EQ(result.attempts, 2);

  // The shifted factor still solves the (near-identical) system.
  const Vec b(12, 1.0);
  const Vec x = result.factor->solve(b);
  Vec ax(12, 0.0);
  a.mul(x, ax);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-8);
}

TEST(ShiftRetry, DisabledRetryRethrowsInjectedBreakdown) {
  util::FaultInjector::global().configure("test.factor:spd:1:1");
  const CsrMatrix a = spd_tridiagonal(6);
  ShiftRetryOptions retry;
  retry.enabled = false;
  EXPECT_THROW((void)factor_with_shift_retry(a, {}, retry, "test.factor"),
               NotPositiveDefiniteError);
  util::FaultInjector::global().reset();
}

TEST(ShiftRetry, HopelesslyIndefiniteMatrixStillFailsClassified) {
  util::FaultInjector::global().reset();
  // diag(1, -1): the ladder caps at initial_scale * 2^max_attempts * ||diag||,
  // far below the unit shift this operator would need.
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -1.0);
  const CsrMatrix a = CsrMatrix::from_triplets(t);
  try {
    (void)factor_with_shift_retry(a, {}, {}, "test.factor");
    FAIL() << "expected NotPositiveDefiniteError";
  } catch (const NotPositiveDefiniteError& e) {
    EXPECT_NE(std::string(e.what()).find("test.factor"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("still indefinite"), std::string::npos);
  }
}

}  // namespace
}  // namespace ms::la
