// core::CancelToken semantics: inert-by-default, classified throws from
// check(), deadline expiry, and parent-chain observation (the batch-cancel
// mechanism behind SweepOptions::max_failures).

#include "core/cancel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "core/health.hpp"
#include "core/sim_error.hpp"

namespace ms::core {
namespace {

TEST(CancelToken, DefaultTokenIsInertAndNeverThrows) {
  const CancelToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_expired());
  token.request_cancel();  // no-op, not UB
  EXPECT_NO_THROW(token.check("stage"));
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, RequestCancelThrowsClassifiedAtCheck) {
  const CancelToken token = CancelToken::cancellable();
  EXPECT_NO_THROW(token.check("stage"));
  token.request_cancel();
  try {
    token.check("global.solve");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrorCode::kCancelled);
    EXPECT_EQ(e.stage(), "global.solve");
  }
}

TEST(CancelToken, DeadlineExpiryThrowsClassifiedAtCheck) {
  const CancelToken token = CancelToken::with_deadline(1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.deadline_expired());
  try {
    token.check("thermal.transient.step");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrorCode::kDeadlineExceeded);
    EXPECT_EQ(e.stage(), "thermal.transient.step");
  }
}

TEST(CancelToken, ChildObservesParentCancel) {
  const CancelToken parent = CancelToken::cancellable();
  const CancelToken child = parent.child();
  EXPECT_NO_THROW(child.check("stage"));
  parent.request_cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_THROW(child.check("stage"), SimError);
  // Cancelling a child never propagates up to the parent.
  const CancelToken sibling = parent.child();
  EXPECT_TRUE(sibling.cancelled());  // parent flag still set
}

TEST(CancelToken, ChildDeadlineIsIndependentOfParent) {
  const CancelToken parent = CancelToken::cancellable();
  const CancelToken child = parent.child(1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(child.deadline_expired());
  EXPECT_FALSE(parent.deadline_expired());
  EXPECT_NO_THROW(parent.check("stage"));
  EXPECT_THROW(child.check("stage"), SimError);
}

TEST(HealthGuard, RequireFiniteClassifiesNonFiniteFields) {
  const double clean[3] = {1.0, -2.0, 3.0};
  EXPECT_NO_THROW(require_finite(true, "stage", "field", clean, 3));
  const double dirty[3] = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  try {
    require_finite(true, "global.solve", "global solution", dirty, 3);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrorCode::kNonFiniteField);
    EXPECT_EQ(e.stage(), "global.solve");
  }
  // The config knob really disables the sweep.
  EXPECT_NO_THROW(require_finite(false, "stage", "field", dirty, 3));
  const double inf[1] = {std::numeric_limits<double>::infinity()};
  EXPECT_THROW(require_finite(true, "stage", "field", inf, 1), SimError);
}

}  // namespace
}  // namespace ms::core
