// Fault-tolerant sweep service, end to end: 64-scenario batches driven
// through injected builder throws, NaN payloads, SPD breakdowns, deadlines,
// and failure budgets. The locks: the batch always completes with
// per-scenario statuses, the cache hit/miss counters stay exact (a failed
// build re-runs, nothing else shifts), and every healthy row is bit-identical
// to the fault-free run.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/sim_error.hpp"
#include "sweep/scenario_result.hpp"
#include "sweep/scenario_spec.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/fault_injector.hpp"

namespace ms::sweep {
namespace {

constexpr int kBatch = 64;

core::SimulationConfig small_config() {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 10;
  config.global.method = "direct";  // the factor cache is on the hot path
  config.coupling.solve.method = "direct";
  return config;
}

/// 64 steady uniform-ΔT scenarios over one 2x2 block spec: every scenario
/// shares the ROM model and the global operator structure, so the warm
/// cache counters are exact and single-valued.
std::vector<ScenarioSpec> steady_family(int count) {
  std::vector<ScenarioSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ScenarioSpec spec;
    spec.name = "dt" + std::to_string(i);
    spec.blocks_x = 2;
    spec.blocks_y = 2;
    spec.delta_t = -150.0 - i;  // load varies; the operator does not
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Deterministic engine: one worker, FIFO, shared caches.
SweepOptions serial_options() {
  SweepOptions options;
  options.config = small_config();
  options.num_threads = 1;
  return options;
}

void expect_bitwise(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_NE(a.array, nullptr);
  ASSERT_NE(b.array, nullptr);
  EXPECT_EQ(a.array->von_mises, b.array->von_mises);
  EXPECT_EQ(a.array->solution, b.array->solution);
  EXPECT_EQ(a.peak_von_mises, b.peak_von_mises);
}

/// The fault-free reference batch (fresh engine, same options).
std::vector<ScenarioResult> reference_run(const std::vector<ScenarioSpec>& specs,
                                          SweepStats* stats) {
  util::FaultInjector::global().reset();
  SweepEngine engine(serial_options());
  return engine.run(specs, stats);
}

TEST(SweepFaults, InjectedBuilderThrowFailsOneRowAndBatchCompletes) {
  const std::vector<ScenarioSpec> specs = steady_family(kBatch);
  SweepStats ref_stats;
  const std::vector<ScenarioResult> reference = reference_run(specs, &ref_stats);
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(kBatch));
  EXPECT_EQ(ref_stats.num_failed, 0);
  // The family shares one ROM model and one global factor.
  EXPECT_EQ(ref_stats.model_cache_misses, 1u);
  EXPECT_EQ(ref_stats.model_cache_hits, static_cast<std::uint64_t>(kBatch - 1));
  EXPECT_EQ(ref_stats.factor_cache_misses, 1u);
  EXPECT_EQ(ref_stats.factor_cache_hits, static_cast<std::uint64_t>(kBatch - 1));

  // Scenario 0's global-factor builder throws (budget 1); with one FIFO
  // worker every later scenario must be untouched.
  util::FaultInjector::global().configure("rom.global.factor_build:throw:1:1");
  SweepEngine faulted_engine(serial_options());
  SweepStats stats;
  const std::vector<ScenarioResult> results = faulted_engine.run(specs, &stats);
  EXPECT_EQ(util::FaultInjector::global().fired_count("rom.global.factor_build"), 1u);
  util::FaultInjector::global().reset();

  ASSERT_EQ(results.size(), static_cast<std::size_t>(kBatch));
  EXPECT_EQ(results[0].status, ScenarioStatus::kFailed);
  EXPECT_EQ(results[0].error.code, core::SimErrorCode::kFaultInjected);
  EXPECT_EQ(results[0].error.stage, "rom.global.factor_build");
  EXPECT_FALSE(results[0].pareto_optimal);
  for (int i = 1; i < kBatch; ++i) {
    ASSERT_EQ(results[static_cast<std::size_t>(i)].status, ScenarioStatus::kOk) << "row " << i;
    expect_bitwise(results[static_cast<std::size_t>(i)],
                   reference[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(stats.num_failed, 1);
  EXPECT_EQ(stats.num_degraded, 0);

  // Exact counter accounting: the failed claim counts a miss and clears its
  // slot, scenario 1 re-claims the build, everything later still hits.
  EXPECT_EQ(stats.factor_cache_misses, ref_stats.factor_cache_misses + 1);
  EXPECT_EQ(stats.factor_cache_hits, ref_stats.factor_cache_hits - 1);
  EXPECT_EQ(stats.model_cache_misses, ref_stats.model_cache_misses);
  EXPECT_EQ(stats.model_cache_hits, ref_stats.model_cache_hits);
}

TEST(SweepFaults, NanPayloadFailsClassifiedAndLeavesCacheCountersAlone) {
  const std::vector<ScenarioSpec> specs = steady_family(kBatch);
  SweepStats ref_stats;
  const std::vector<ScenarioResult> reference = reference_run(specs, &ref_stats);

  // Scenario 0's global solve output is poisoned with one NaN *after* the
  // factor was built and cached — the health sweep at the stage boundary
  // must classify it, and the warm cache is untouched for later rows.
  util::FaultInjector::global().configure("rom.global.solve:nan:1:1");
  SweepEngine engine(serial_options());
  SweepStats stats;
  const std::vector<ScenarioResult> results = engine.run(specs, &stats);
  util::FaultInjector::global().reset();

  ASSERT_EQ(results.size(), static_cast<std::size_t>(kBatch));
  EXPECT_EQ(results[0].status, ScenarioStatus::kFailed);
  EXPECT_EQ(results[0].error.code, core::SimErrorCode::kNonFiniteField);
  EXPECT_EQ(results[0].error.stage, "global.solve");
  for (int i = 1; i < kBatch; ++i) {
    ASSERT_EQ(results[static_cast<std::size_t>(i)].status, ScenarioStatus::kOk) << "row " << i;
    expect_bitwise(results[static_cast<std::size_t>(i)],
                   reference[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(stats.num_failed, 1);
  // The build succeeded before the poison hit: counters match the reference.
  EXPECT_EQ(stats.factor_cache_misses, ref_stats.factor_cache_misses);
  EXPECT_EQ(stats.factor_cache_hits, ref_stats.factor_cache_hits);
  EXPECT_EQ(stats.model_cache_misses, ref_stats.model_cache_misses);
  EXPECT_EQ(stats.model_cache_hits, ref_stats.model_cache_hits);
}

TEST(SweepFaults, SpdBreakdownDegradesButCompletesEveryRow) {
  const std::vector<ScenarioSpec> specs = steady_family(8);

  // The first global factorization hits a (simulated) pivot breakdown; the
  // shift-retry ladder rescues it. The shifted factor lands in the shared
  // cache, so every row of the batch reports degraded with the same shift.
  util::FaultInjector::global().configure("rom.global.factor:spd:1:1");
  SweepEngine engine(serial_options());
  SweepStats stats;
  const std::vector<ScenarioResult> results = engine.run(specs, &stats);
  util::FaultInjector::global().reset();

  ASSERT_EQ(results.size(), 8u);
  for (const ScenarioResult& r : results) {
    EXPECT_EQ(r.status, ScenarioStatus::kDegraded) << r.name;
    EXPECT_GT(r.diagonal_shift, 0.0);
    EXPECT_EQ(r.diagonal_shift, results[0].diagonal_shift);  // one shared factor
    ASSERT_NE(r.array, nullptr);  // degraded rows carry a full payload
    EXPECT_GT(r.peak_von_mises, 0.0);
  }
  EXPECT_EQ(stats.num_failed, 0);
  EXPECT_EQ(stats.num_degraded, 8);
  // Degraded rows still compete for the Pareto frontier.
  int pareto = 0;
  for (const ScenarioResult& r : results) pareto += r.pareto_optimal ? 1 : 0;
  EXPECT_GE(pareto, 1);
}

TEST(SweepFaults, WorkerProbeFailsScenarioWithFaultInjectedCode) {
  util::FaultInjector::global().configure("sweep.worker:throw:1:1");
  SweepEngine engine(serial_options());
  const std::vector<ScenarioResult> results = engine.run(steady_family(3));
  util::FaultInjector::global().reset();

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, ScenarioStatus::kFailed);
  EXPECT_EQ(results[0].error.code, core::SimErrorCode::kFaultInjected);
  EXPECT_EQ(results[0].error.stage, "sweep.worker");
  EXPECT_EQ(results[1].status, ScenarioStatus::kOk);
  EXPECT_EQ(results[2].status, ScenarioStatus::kOk);
}

TEST(SweepFaults, ExpiredDeadlineFailsEveryRowWithoutKillingTheBatch) {
  util::FaultInjector::global().reset();
  SweepOptions options = serial_options();
  options.deadline_seconds = 1e-9;  // expires before the first check point
  SweepEngine engine(options);
  SweepStats stats;
  const std::vector<ScenarioResult> results = engine.run(steady_family(6), &stats);

  ASSERT_EQ(results.size(), 6u);
  for (const ScenarioResult& r : results) {
    EXPECT_EQ(r.status, ScenarioStatus::kFailed) << r.name;
    EXPECT_EQ(r.error.code, core::SimErrorCode::kDeadlineExceeded) << r.name;
  }
  EXPECT_EQ(stats.num_failed, 6);
}

TEST(SweepFaults, MaxFailuresTripsBatchCancellation) {
  util::FaultInjector::global().reset();
  SweepOptions options = serial_options();
  options.max_failures = 1;
  SweepEngine engine(options);

  // Every spec is invalid; with one FIFO worker, failures accumulate in
  // order: rows 0 and 1 spend the budget, rows 2+ are cancelled unstarted.
  std::vector<ScenarioSpec> specs = steady_family(6);
  for (ScenarioSpec& spec : specs) spec.blocks_x = 0;
  SweepStats stats;
  const std::vector<ScenarioResult> results = engine.run(specs, &stats);

  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].error.code, core::SimErrorCode::kInvalidSpec);
  EXPECT_EQ(results[1].error.code, core::SimErrorCode::kInvalidSpec);
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_EQ(results[i].status, ScenarioStatus::kFailed) << "row " << i;
    EXPECT_EQ(results[i].error.code, core::SimErrorCode::kCancelled) << "row " << i;
  }
  EXPECT_EQ(stats.num_failed, 6);
}

TEST(SweepFaults, EnqueueStillPropagatesRawExceptions) {
  // The async API keeps exception semantics: no row-folding, the future
  // rethrows the injected fault itself.
  util::FaultInjector::global().configure("sweep.worker:throw:1:1");
  SweepEngine engine(serial_options());
  ScenarioSpec spec = steady_family(1)[0];
  EXPECT_THROW((void)engine.enqueue(spec).get(), util::InjectedFault);
  util::FaultInjector::global().reset();
}

}  // namespace
}  // namespace ms::sweep
