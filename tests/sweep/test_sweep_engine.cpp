// Cache-correctness locks for the sweep engine: a shared-cache run must be
// bit-identical to cold per-spec runs, and the cache counters must prove the
// factorization memoization actually fired (misses = distinct operator
// structures, not scenario count).

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <stdexcept>
#include <vector>

#include "core/simulator.hpp"
#include "sweep/scenario_result.hpp"
#include "sweep/scenario_spec.hpp"
#include "sweep/sweep_engine.hpp"

namespace ms::sweep {
namespace {

core::SimulationConfig small_config() {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 10;
  // Direct solves so the factorization cache is on the hot path.
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  return config;
}

/// A small trace family: duty/peak variations of one 2x2 fatigue layout —
/// every scenario shares the block spec and the operator structures.
std::vector<ScenarioSpec> trace_family(int count) {
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < count; ++i) {
    ScenarioSpec spec;
    spec.name = "case" + std::to_string(i);
    spec.analysis = AnalysisKind::kFatigue;
    spec.load = LoadKind::kTrace;
    spec.blocks_x = 2;
    spec.blocks_y = 2;
    spec.power.background = 20.0;
    spec.power.hotspot_peak = 100.0 + 50.0 * i;
    spec.trace.period = 6e-5;
    spec.trace.duty = (i + 1.0) / (count + 1.0);
    spec.trace.cycles = 1;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void expect_bitwise(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_NE(a.fatigue, nullptr);
  ASSERT_NE(b.fatigue, nullptr);
  EXPECT_EQ(a.fatigue->von_mises, b.fatigue->von_mises);
  EXPECT_EQ(a.fatigue->stress, b.fatigue->stress);
  EXPECT_EQ(a.fatigue->solution, b.fatigue->solution);
  EXPECT_EQ(a.fatigue->report.min_life_cycles, b.fatigue->report.min_life_cycles);
  EXPECT_EQ(a.min_life_log10, b.min_life_log10);
  EXPECT_EQ(a.peak_von_mises, b.peak_von_mises);
}

TEST(SweepEngine, SharedCachesAreBitIdenticalToColdRuns) {
  const std::vector<ScenarioSpec> specs = trace_family(4);

  SweepOptions cold_options;
  cold_options.config = small_config();
  cold_options.share_caches = false;
  cold_options.num_threads = 1;
  SweepEngine cold_engine(cold_options);
  SweepStats cold_stats;
  const std::vector<ScenarioResult> cold = cold_engine.run(specs, &cold_stats);
  // share_caches = false keeps every query off the caches entirely.
  EXPECT_EQ(cold_stats.factor_cache_hits + cold_stats.factor_cache_misses, 0u);
  EXPECT_EQ(cold_stats.model_cache_hits + cold_stats.model_cache_misses, 0u);

  SweepOptions warm_options;
  warm_options.config = small_config();
  warm_options.share_caches = true;
  warm_options.num_threads = 2;
  SweepEngine warm_engine(warm_options);
  SweepStats warm_stats;
  const std::vector<ScenarioResult> warm = warm_engine.run(specs, &warm_stats);

  ASSERT_EQ(cold.size(), specs.size());
  ASSERT_EQ(warm.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(warm[i].name, specs[i].name);  // run() preserves input order
    expect_bitwise(warm[i], cold[i]);
  }

  // Memoization proof: one ROM model build, and factorization misses equal
  // the two distinct operator structures of this family (global stiffness +
  // transient conduction stepper), NOT the scenario count.
  EXPECT_EQ(warm_stats.model_cache_misses, 1u);
  EXPECT_EQ(warm_stats.model_cache_hits, static_cast<std::uint64_t>(specs.size() - 1));
  EXPECT_EQ(warm_stats.factor_cache_misses, 2u);
  EXPECT_EQ(warm_stats.factor_cache_hits,
            static_cast<std::uint64_t>(2 * specs.size() - 2));

  // GlobalSolveStats agrees: only the first scenario factorized.
  std::int64_t factorizations = 0;
  for (const ScenarioResult& r : warm) {
    factorizations += r.fatigue->solve_stats.num_factorizations;
  }
  EXPECT_EQ(factorizations, 1);
}

TEST(SweepEngine, RunMarksTheParetoFrontier) {
  SweepOptions options;
  options.config = small_config();
  SweepEngine engine(options);
  const std::vector<ScenarioResult> results = engine.run(trace_family(3));
  int pareto = 0;
  for (const ScenarioResult& r : results) pareto += r.pareto_optimal ? 1 : 0;
  EXPECT_GE(pareto, 1);  // the frontier is never empty
}

TEST(SweepEngine, EnqueueResolvesFutures) {
  SweepOptions options;
  options.config = small_config();
  options.num_threads = 2;
  SweepEngine engine(options);

  ScenarioSpec spec;
  spec.name = "async";
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  std::future<ScenarioResult> future = engine.enqueue(spec);
  const ScenarioResult result = future.get();
  EXPECT_EQ(result.name, "async");
  ASSERT_NE(result.array, nullptr);
  EXPECT_GT(result.peak_von_mises, 0.0);
  EXPECT_FALSE(result.pareto_optimal);  // a property of run() tables only
}

TEST(SweepEngine, ExceptionsPropagateThroughFutures) {
  SweepOptions options;
  options.config = small_config();
  SweepEngine engine(options);

  ScenarioSpec bad;
  bad.blocks_x = 0;  // validate() rejects inside the worker
  std::future<ScenarioResult> future = engine.enqueue(bad);
  EXPECT_THROW((void)future.get(), std::invalid_argument);

  // run() isolates the failure into its row instead of throwing: the batch
  // completes and the error is classified as an invalid spec.
  SweepStats stats;
  const std::vector<ScenarioResult> results = engine.run({bad}, &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ScenarioStatus::kFailed);
  EXPECT_TRUE(results[0].failed());
  EXPECT_EQ(results[0].error.code, core::SimErrorCode::kInvalidSpec);
  EXPECT_FALSE(results[0].error.message.empty());
  EXPECT_FALSE(results[0].pareto_optimal);
  EXPECT_EQ(stats.num_failed, 1);
}

}  // namespace
}  // namespace ms::sweep
