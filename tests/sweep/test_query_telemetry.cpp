// Query-scoped observability locks for the sweep engine: every result row
// carries its own QueryTelemetry, and the per-row numbers must reconcile
// EXACTLY with the batch-level SweepStats and the payload's solve stats —
// attribution is bookkeeping, not sampling. Also locks the cross-thread span
// handoff (worker query spans parent under the enqueuing batch span), the
// flight-recorder snapshot on injected-fault failures, and the structured
// event-log lifecycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/query_scope.hpp"
#include "obs/trace.hpp"
#include "sweep/scenario_result.hpp"
#include "sweep/scenario_spec.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/fault_injector.hpp"
#include "util/json.hpp"

namespace ms::sweep {
namespace {

core::SimulationConfig small_config() {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 10;
  // Direct solves so the factorization cache (and its attribution) is on the
  // hot path.
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  return config;
}

std::vector<ScenarioSpec> trace_family(int count) {
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < count; ++i) {
    ScenarioSpec spec;
    spec.name = "case" + std::to_string(i);
    spec.analysis = AnalysisKind::kFatigue;
    spec.load = LoadKind::kTrace;
    spec.blocks_x = 2;
    spec.blocks_y = 2;
    spec.power.background = 20.0;
    spec.power.hotspot_peak = 100.0 + 50.0 * i;
    spec.trace.period = 6e-5;
    spec.trace.duty = (i + 1.0) / (count + 1.0);
    spec.trace.cycles = 1;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::int64_t sum_counts(const std::vector<ScenarioResult>& rows, const char* key) {
  std::int64_t total = 0;
  for (const ScenarioResult& r : rows) total += r.telemetry.count(key);
  return total;
}

/// Observability state is process-wide; leave none of it behind.
class QueryTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(false);
    obs::clear_trace();
    obs::EventLog::close();
    util::FaultInjector::global().reset();
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::clear_trace();
    obs::EventLog::close();
    obs::FlightRecorder::set_enabled(false);
    util::FaultInjector::global().reset();
  }
};

TEST_F(QueryTelemetryTest, PerRowTelemetryReconcilesExactlyWithSweepStats) {
  const std::vector<ScenarioSpec> specs = trace_family(4);
  SweepOptions options;
  options.config = small_config();
  options.num_threads = 2;
  SweepEngine engine(options);

  SweepStats cold_stats;
  const std::vector<ScenarioResult> cold = engine.run(specs, &cold_stats);
  ASSERT_EQ(cold.size(), specs.size());

  // The per-row attributed cache traffic sums to the batch-level cache
  // deltas — every hit and miss is charged to exactly one scenario.
  EXPECT_EQ(sum_counts(cold, "factor_cache.hits"),
            static_cast<std::int64_t>(cold_stats.factor_cache_hits));
  EXPECT_EQ(sum_counts(cold, "factor_cache.misses"),
            static_cast<std::int64_t>(cold_stats.factor_cache_misses));
  EXPECT_EQ(sum_counts(cold, "model_cache.hits"),
            static_cast<std::int64_t>(cold_stats.model_cache_hits));
  EXPECT_EQ(sum_counts(cold, "model_cache.misses"),
            static_cast<std::int64_t>(cold_stats.model_cache_misses));
  // This trace family has exactly two operator structures and one ROM model.
  EXPECT_EQ(cold_stats.factor_cache_misses, 2u);
  EXPECT_EQ(cold_stats.model_cache_misses, 1u);

  for (const ScenarioResult& r : cold) {
    ASSERT_NE(r.fatigue, nullptr) << r.name;
    // Row-level identities against the payload's own solver bookkeeping.
    EXPECT_EQ(r.telemetry.count("factorizations"),
              r.fatigue->solve_stats.num_factorizations) << r.name;
    EXPECT_EQ(r.telemetry.count("rhs"), r.fatigue->solve_stats.num_rhs) << r.name;
    EXPECT_GE(r.telemetry.count("global.solves"), 1) << r.name;
    // Stage durations and the queue wait are present on every row.
    EXPECT_EQ(r.telemetry.seconds.count("queue_wait_seconds"), 1u) << r.name;
    EXPECT_EQ(r.telemetry.seconds.count("scenario_seconds"), 1u) << r.name;
    EXPECT_GT(r.telemetry.secs("scenario_seconds"), 0.0) << r.name;
    EXPECT_GE(r.telemetry.secs("global.solve_seconds"), 0.0) << r.name;
  }

  // Warm pass: every operator is a cache hit, so zero attributed
  // factorizations anywhere and exactly two factor-cache hits per row.
  SweepStats warm_stats;
  const std::vector<ScenarioResult> warm = engine.run(specs, &warm_stats);
  EXPECT_EQ(warm_stats.factor_cache_misses, 0u);
  EXPECT_EQ(sum_counts(warm, "factorizations"), 0);
  EXPECT_EQ(sum_counts(warm, "factor_cache.hits"),
            static_cast<std::int64_t>(warm_stats.factor_cache_hits));
  for (const ScenarioResult& r : warm) {
    EXPECT_EQ(r.telemetry.count("factor_cache.hits"), 2) << r.name;
    EXPECT_EQ(r.telemetry.count("factor_cache.misses"), 0) << r.name;
    EXPECT_EQ(r.telemetry.count("model_cache.hits"), 1) << r.name;
  }
}

TEST_F(QueryTelemetryTest, WorkerQuerySpansParentUnderTheBatchSpanAcrossThreads) {
  const std::vector<ScenarioSpec> specs = trace_family(8);
  SweepOptions options;
  options.config = small_config();
  options.num_threads = 8;
  SweepEngine engine(options);

  obs::set_tracing_enabled(true);
  obs::SpanId batch_id = 0;
  {
    obs::ScopedSpan batch("sweep.batch");
    batch_id = obs::current_span_id();
    ASSERT_NE(batch_id, obs::SpanId{0});
    (void)engine.run(specs);
  }
  obs::set_tracing_enabled(false);

  // Every worker's query root span carries the enqueuing thread's span as an
  // explicit remote parent — the handoff the engine threads through
  // QueryContext, since TLS never crosses the pool boundary.
  int query_spans = 0;
  for (const obs::SpanEvent& e : obs::collect_events()) {
    if (std::string(e.name) != "sweep.query") continue;
    ++query_spans;
    EXPECT_EQ(e.parent, batch_id);
    EXPECT_TRUE(e.remote_parent);
  }
  EXPECT_EQ(query_spans, static_cast<int>(specs.size()));
}

TEST_F(QueryTelemetryTest, InjectedFaultRowsShipTelemetryAndFlightSnapshot) {
  util::FaultInjector::global().configure("sweep.worker:throw:1:1");
  SweepOptions options;
  options.config = small_config();
  options.num_threads = 2;
  SweepEngine engine(options);  // enables the flight recorder by default

  SweepStats stats;
  const std::vector<ScenarioResult> results = engine.run(trace_family(2), &stats);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(stats.num_failed, 1);

  const ScenarioResult* failed = nullptr;
  for (const ScenarioResult& r : results) {
    if (r.failed()) failed = &r;
  }
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->error.code, core::SimErrorCode::kFaultInjected);
  EXPECT_EQ(failed->error.stage, "sweep.worker");
  // Partial attribution survives the throw: the queue wait was charged
  // before the probe fired.
  EXPECT_EQ(failed->telemetry.seconds.count("queue_wait_seconds"), 1u);
  // The post-mortem snapshot is present and ends with the failure's own
  // warn line (guarded_query snapshots after logging).
  ASSERT_FALSE(failed->flight.empty());
  bool saw_failure_log = false;
  for (const obs::FlightRecord& record : failed->flight) {
    if (record.is_log && record.text.find("failed") != std::string::npos) {
      saw_failure_log = true;
    }
  }
  EXPECT_TRUE(saw_failure_log);
  // The healthy row carries no snapshot — flight is a failure artifact.
  for (const ScenarioResult& r : results) {
    if (!r.failed()) EXPECT_TRUE(r.flight.empty()) << r.name;
  }
}

TEST_F(QueryTelemetryTest, EventLogRecordsTheScenarioLifecycle) {
  const std::string path = ::testing::TempDir() + "ms_sweep_events.jsonl";
  obs::EventLog::open(path);

  SweepOptions options;
  options.config = small_config();
  options.num_threads = 2;
  SweepEngine engine(options);
  const std::vector<ScenarioSpec> specs = trace_family(3);
  (void)engine.run(specs);
  obs::EventLog::close();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int enqueued = 0;
  int started = 0;
  int completed = 0;
  int cache_hits = 0;
  double last_seq = -1.0;
  std::set<std::string> completed_ok;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const util::JsonValue event = util::parse_json(line);  // throws on garble
    const double seq = event.find("seq")->number;
    EXPECT_GT(seq, last_seq);  // strictly monotonic, gap-detectable
    last_seq = seq;
    ASSERT_NE(event.find("ts_us"), nullptr);
    const std::string type = event.find("event")->string;
    if (type == "scenario.enqueued") ++enqueued;
    if (type == "scenario.started") ++started;
    if (type == "scenario.cache_hit") ++cache_hits;
    if (type == "scenario.completed") {
      ++completed;
      EXPECT_EQ(event.find("status")->string, "ok");
      EXPECT_GE(event.find("simulate_seconds")->number, 0.0);
      completed_ok.insert(event.find("scenario")->string);
    }
  }
  EXPECT_EQ(enqueued, static_cast<int>(specs.size()));
  EXPECT_EQ(started, static_cast<int>(specs.size()));
  EXPECT_EQ(completed, static_cast<int>(specs.size()));
  EXPECT_EQ(completed_ok.size(), specs.size());  // every scenario, once
  // The shared-cache family produces at least one attributed cache-hit event
  // (every scenario after the first reuses the model and factorizations).
  EXPECT_GE(cache_hits, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ms::sweep
