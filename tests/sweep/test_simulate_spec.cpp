// Equivalence locks: simulate(spec) must be bit-identical to the legacy
// simulate_* call it replaces — same fields, same stress tensors, same
// global solution, compared with == (no tolerance). Both calls run on one
// simulator (shared local-stage model, no caches), so any drift is a real
// dispatch bug, not numerical noise.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "chiplet/package_model.hpp"
#include "core/simulator.hpp"
#include "sweep/scenario_result.hpp"
#include "sweep/scenario_spec.hpp"

namespace ms::sweep {
namespace {

core::SimulationConfig small_config() {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 10;
  return config;
}

void expect_bitwise(const core::ArrayResult& a, const core::ArrayResult& b) {
  EXPECT_EQ(a.region_blocks_x, b.region_blocks_x);
  EXPECT_EQ(a.region_blocks_y, b.region_blocks_y);
  EXPECT_EQ(a.von_mises, b.von_mises);
  EXPECT_EQ(a.stress, b.stress);
  EXPECT_EQ(a.solution, b.solution);
}

TEST(SimulateSpec, ArraySteadyUniformMatchesLegacy) {
  core::MoreStressSimulator sim(small_config());
  const core::ArrayResult legacy = sim.simulate_array(3, 2);

  ScenarioSpec spec;
  spec.blocks_x = 3;
  spec.blocks_y = 2;
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.array, nullptr);
  expect_bitwise(*result.array, legacy);
  EXPECT_EQ(result.peak_von_mises,
            *std::max_element(legacy.von_mises.begin(), legacy.von_mises.end()));
  EXPECT_TRUE(std::isnan(result.min_life_log10));
}

TEST(SimulateSpec, ArraySteadyLoadFieldPayloadMatchesLegacy) {
  core::MoreStressSimulator sim(small_config());
  rom::BlockLoadField load = rom::BlockLoadField::uniform(-100.0);
  const core::ArrayResult legacy = sim.simulate_array(2, 2, load);

  ScenarioSpec spec;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.load_field = std::make_shared<rom::BlockLoadField>(load);
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.array, nullptr);
  expect_bitwise(*result.array, legacy);
}

TEST(SimulateSpec, ArraySteadyPowerMatchesLegacy) {
  const core::SimulationConfig config = small_config();
  core::MoreStressSimulator sim(config);

  ScenarioSpec spec;
  spec.load = LoadKind::kPower;
  spec.blocks_x = 3;
  spec.blocks_y = 3;
  spec.power.background = 25.0;
  spec.power.hotspot_peak = 300.0;

  const core::ThermalArrayResult legacy =
      sim.simulate_array_thermal(3, 3, make_power_map(spec, config));
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.thermal_array, nullptr);
  expect_bitwise(*result.thermal_array, legacy);
  EXPECT_EQ(result.thermal_array->load.values(), legacy.load.values());
  EXPECT_EQ(result.thermal_array->temperature.nodal(), legacy.temperature.nodal());
}

TEST(SimulateSpec, ArrayTransientMatchesLegacyWithSnapshots) {
  const core::SimulationConfig config = small_config();
  core::MoreStressSimulator sim(config);

  ScenarioSpec spec;
  spec.analysis = AnalysisKind::kTransient;
  spec.load = LoadKind::kTrace;
  spec.blocks_x = 3;
  spec.blocks_y = 2;
  spec.power.background = 30.0;
  spec.power.hotspot_peak = 200.0;
  spec.trace.period = 6e-5;
  spec.trace.duty = 0.5;
  spec.trace.cycles = 1;
  spec.snapshot_steps = {0, 2};

  const thermal::PowerTrace trace = make_power_trace(spec, make_power_map(spec, config));
  const core::ThermalTransientArrayResult legacy =
      sim.simulate_array_thermal_transient(3, 2, trace, spec.snapshot_steps);
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.transient_array, nullptr);
  expect_bitwise(*result.transient_array, legacy);
  EXPECT_EQ(result.transient_array->envelope_load.values(), legacy.envelope_load.values());
  ASSERT_EQ(result.transient_array->snapshots.size(), legacy.snapshots.size());
  for (std::size_t i = 0; i < legacy.snapshots.size(); ++i) {
    expect_bitwise(result.transient_array->snapshots[i], legacy.snapshots[i]);
  }
}

TEST(SimulateSpec, ArrayFatigueMatchesLegacy) {
  const core::SimulationConfig config = small_config();
  core::MoreStressSimulator sim(config);

  ScenarioSpec spec;
  spec.analysis = AnalysisKind::kFatigue;
  spec.load = LoadKind::kTrace;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.power.background = 20.0;
  spec.power.hotspot_peak = 350.0;
  spec.trace.period = 6e-5;
  spec.trace.duty = 0.25;
  spec.trace.cycles = 2;

  const thermal::PowerTrace trace = make_power_trace(spec, make_power_map(spec, config));
  const core::FatigueResult legacy = sim.simulate_array_fatigue(2, 2, trace, spec.fatigue);
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.fatigue, nullptr);
  expect_bitwise(*result.fatigue, legacy);
  EXPECT_EQ(result.fatigue->report.min_life_cycles, legacy.report.min_life_cycles);
  EXPECT_EQ(result.fatigue->report.min_life_channel, legacy.report.min_life_channel);
  EXPECT_EQ(result.min_life_log10, std::log10(legacy.report.min_life_cycles));
  EXPECT_EQ(result.min_life_seconds, legacy.report.min_life_seconds);
}

TEST(SimulateSpec, SubmodelSteadyUniformDisplacementMatchesLegacy) {
  core::MoreStressSimulator sim(small_config());
  const auto linear = [](const mesh::Point3& p) {
    return std::array<double, 3>{1e-4 * p.x, 1e-4 * p.y, -2e-4 * p.z};
  };
  const core::ArrayResult legacy = sim.simulate_submodel(2, 2, 1, linear);

  ScenarioSpec spec;
  spec.kind = ScenarioKind::kSubmodel;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.dummy_rings = 1;
  spec.displacement = linear;
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.array, nullptr);
  expect_bitwise(*result.array, legacy);
}

TEST(SimulateSpec, SubmodelThermalMatchesLegacyWithSharedPackage) {
  const core::SimulationConfig config = small_config();
  core::MoreStressSimulator sim(config);

  // Pre-build the demo package once and hand it to both calls via the
  // payload slot — the same object the sweep engine would share.
  const int padded = 2 + 2 * 1;
  const chiplet::PackageGeometry geometry =
      chiplet::demo_package_geometry(config.geometry.pitch, padded, config.geometry.height);
  const auto package = std::make_shared<const chiplet::PackageModel>(
      geometry, chiplet::demo_coarse_spec(), config.thermal_load);
  const chiplet::SubmodelPlacement placement =
      chiplet::standard_locations(package->geometry(), config.geometry.pitch, padded, padded)[1];

  ScenarioSpec spec;
  spec.kind = ScenarioKind::kSubmodel;
  spec.load = LoadKind::kPower;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.dummy_rings = 1;
  spec.package = package;
  spec.placement = placement;
  spec.power.background = 15.0;
  spec.power.hotspot_peak = 250.0;

  const thermal::PowerMap power = make_power_map(spec, config, package->geometry(), placement);
  const core::ThermalSubmodelResult legacy =
      sim.simulate_submodel_thermal(2, 2, 1, *package, placement, power);
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.thermal_submodel, nullptr);
  expect_bitwise(*result.thermal_submodel, legacy);
  EXPECT_EQ(result.thermal_submodel->load.values(), legacy.load.values());
}

TEST(SimulateSpec, SubmodelFatigueMatchesLegacy) {
  const core::SimulationConfig config = small_config();
  core::MoreStressSimulator sim(config);

  const int padded = 2 + 2 * 1;
  const chiplet::PackageGeometry geometry =
      chiplet::demo_package_geometry(config.geometry.pitch, padded, config.geometry.height);
  const auto package = std::make_shared<const chiplet::PackageModel>(
      geometry, chiplet::demo_coarse_spec(), config.thermal_load);
  const chiplet::SubmodelPlacement placement =
      chiplet::standard_locations(package->geometry(), config.geometry.pitch, padded, padded)[0];

  ScenarioSpec spec;
  spec.kind = ScenarioKind::kSubmodel;
  spec.analysis = AnalysisKind::kFatigue;
  spec.load = LoadKind::kTrace;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.dummy_rings = 1;
  spec.package = package;
  spec.placement = placement;
  spec.power.background = 20.0;
  spec.power.hotspot_peak = 300.0;
  spec.trace.period = 6e-5;
  spec.trace.duty = 0.5;
  spec.trace.cycles = 1;

  const thermal::PowerTrace trace =
      make_power_trace(spec, make_power_map(spec, config, package->geometry(), placement));
  const core::FatigueResult legacy =
      sim.simulate_submodel_fatigue(2, 2, 1, *package, placement, trace, spec.fatigue);
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.fatigue, nullptr);
  expect_bitwise(*result.fatigue, legacy);
  EXPECT_EQ(result.fatigue->report.min_life_cycles, legacy.report.min_life_cycles);
}

TEST(SimulateSpec, TimeStepOverrideMatchesAdjustedConfig) {
  // A per-spec time_step override must be bit-identical to a simulator
  // whose config carries that step outright.
  core::SimulationConfig adjusted = small_config();
  adjusted.coupling.transient.time_step = 1.5e-5;
  core::MoreStressSimulator reference(adjusted);

  ScenarioSpec spec;
  spec.analysis = AnalysisKind::kTransient;
  spec.load = LoadKind::kTrace;
  spec.blocks_x = 2;
  spec.blocks_y = 2;
  spec.power.background = 25.0;
  spec.trace.period = 6e-5;
  spec.trace.duty = 0.5;
  spec.trace.cycles = 1;

  const thermal::PowerTrace trace =
      make_power_trace(spec, make_power_map(spec, small_config()));
  const core::ThermalTransientArrayResult legacy =
      reference.simulate_array_thermal_transient(2, 2, trace, {});

  core::MoreStressSimulator sim(small_config());
  spec.time_step = 1.5e-5;
  const ScenarioResult result = sim.simulate(spec);
  ASSERT_NE(result.transient_array, nullptr);
  expect_bitwise(*result.transient_array, legacy);
  EXPECT_EQ(result.transient_array->transient.times, legacy.transient.times);
}

}  // namespace
}  // namespace ms::sweep
