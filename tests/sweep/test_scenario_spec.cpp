#include "sweep/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

namespace ms::sweep {
namespace {

/// EXPECT_THROW plus a substring check on the diagnostic.
template <typename Fn>
void expect_throw_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected invalid_argument containing '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

ScenarioSpec fatigue_spec() {
  ScenarioSpec spec;
  spec.name = "hotspot_fatigue";
  spec.kind = ScenarioKind::kArray;
  spec.analysis = AnalysisKind::kFatigue;
  spec.load = LoadKind::kTrace;
  spec.blocks_x = 6;
  spec.blocks_y = 4;
  spec.power.background = 20.0;
  spec.power.hotspot_peak = 387.5;
  spec.power.hotspot_sigma_pitches = 2.25;
  spec.power.hotspot_x = 0.3;
  spec.power.hotspot_y = 0.7;
  spec.trace.shape = "square";
  spec.trace.period = 6.25e-5;
  spec.trace.duty = 1.0 / 3.0;  // a duty that needs all 17 digits to round-trip
  spec.trace.cycles = 3;
  spec.time_step = 3.125e-6;
  spec.fatigue.record_stride = 2;
  spec.fatigue.cycles_per_day = 86400.0 / 7.0;
  return spec;
}

TEST(ScenarioSpec, ConfigTextRoundTripsExactly) {
  const ScenarioSpec spec = fatigue_spec();
  const std::vector<ScenarioSpec> parsed = parse_scenarios(spec.to_config_text());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0] == spec) << spec.to_config_text();
  // And the canonical text itself is a fixed point.
  EXPECT_EQ(parsed[0].to_config_text(), spec.to_config_text());
}

TEST(ScenarioSpec, DefaultSpecRoundTrips) {
  const ScenarioSpec spec;  // steady uniform array, all defaults (NaN ΔT)
  const std::vector<ScenarioSpec> parsed = parse_scenarios(spec.to_config_text());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0] == spec);
  EXPECT_TRUE(std::isnan(parsed[0].delta_t));
}

TEST(ScenarioSpec, SnapshotStepsRoundTrip) {
  ScenarioSpec spec;
  spec.analysis = AnalysisKind::kTransient;
  spec.load = LoadKind::kTrace;
  spec.snapshot_steps = {0, 3, 7};
  const std::vector<ScenarioSpec> parsed = parse_scenarios(spec.to_config_text());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].snapshot_steps, spec.snapshot_steps);
  EXPECT_TRUE(parsed[0] == spec);
}

TEST(ScenarioSpec, DefaultsSectionSeedsLaterScenarios) {
  const std::string text =
      "[defaults]\n"
      "kind = array\n"
      "analysis = fatigue\n"
      "load = trace\n"
      "blocks_x = 6\n"
      "blocks_y = 6\n"
      "trace.duty = 0.25\n"
      "\n"
      "[low]\n"
      "power.hotspot_peak = 100\n"
      "\n"
      "[high]\n"
      "power.hotspot_peak = 400\n"
      "trace.duty = 0.75\n";
  const std::vector<ScenarioSpec> specs = parse_scenarios(text);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "low");
  EXPECT_EQ(specs[0].blocks_x, 6);
  EXPECT_EQ(specs[0].analysis, AnalysisKind::kFatigue);
  EXPECT_DOUBLE_EQ(specs[0].power.hotspot_peak, 100.0);
  EXPECT_DOUBLE_EQ(specs[0].trace.duty, 0.25);
  EXPECT_DOUBLE_EQ(specs[1].trace.duty, 0.75);  // override wins over defaults
  EXPECT_DOUBLE_EQ(specs[1].power.hotspot_peak, 400.0);
}

TEST(ScenarioSpec, CommentsAndBlankLinesAreIgnored) {
  const std::string text =
      "# a comment\n"
      "[s]\n"
      "; another comment\n"
      "blocks_x = 3   # trailing comment\n"
      "blocks_y = 2\n";
  const std::vector<ScenarioSpec> specs = parse_scenarios(text);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].blocks_x, 3);
  EXPECT_EQ(specs[0].blocks_y, 2);
}

TEST(ScenarioSpec, UnknownKeyNamesTheLine) {
  expect_throw_containing(
      [] { parse_scenarios("[s]\nblocks_x = 4\nblockz_y = 4\n"); }, "line 3");
  expect_throw_containing(
      [] { parse_scenarios("[s]\nblocks_x = 4\nblockz_y = 4\n"); }, "blockz_y");
}

TEST(ScenarioSpec, MalformedValueNamesTheLine) {
  expect_throw_containing([] { parse_scenarios("[s]\ntrace.duty = lots\n"); }, "line 2");
  expect_throw_containing([] { parse_scenarios("[s]\nblocks_x = 3.5\n"); }, "line 2");
  expect_throw_containing([] { parse_scenarios("[s]\n\n\nblocks_x =\n"); }, "line 4");
}

TEST(ScenarioSpec, NonFiniteNumbersAreRejectedAtParseTime) {
  // inf / nan in the config text would otherwise surface queries later as a
  // mid-solve kNonFiniteField failure; the parser rejects them with the line
  // number up front.
  expect_throw_containing([] { parse_scenarios("[s]\ntrace.period = inf\n"); }, "line 2");
  expect_throw_containing([] { parse_scenarios("[s]\ntrace.period = inf\n"); }, "non-finite");
  expect_throw_containing([] { parse_scenarios("[s]\npower.background = -inf\n"); },
                          "power.background");
  expect_throw_containing([] { parse_scenarios("[s]\ntrace.duty = nan\n"); }, "trace.duty");
  expect_throw_containing([] { parse_scenarios("[s]\nfatigue.cycles_per_day = nan\n"); },
                          "non-finite");
  // Infinities are never legal, even on the NaN-able fields.
  expect_throw_containing([] { parse_scenarios("[s]\ndelta_t = inf\n"); }, "non-finite");
}

TEST(ScenarioSpec, NanStaysLegalWhereItMeansUnset) {
  // delta_t / power.hotspot_x / power.hotspot_y default to NaN ("unset");
  // writing nan explicitly restores that default and still round-trips.
  const std::vector<ScenarioSpec> specs = parse_scenarios(
      "[s]\ndelta_t = nan\npower.hotspot_x = nan\npower.hotspot_y = nan\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_TRUE(std::isnan(specs[0].delta_t));
  EXPECT_TRUE(std::isnan(specs[0].power.hotspot_x));
  EXPECT_TRUE(std::isnan(specs[0].power.hotspot_y));
}

TEST(ScenarioSpec, KeyOutsideSectionFails) {
  expect_throw_containing([] { parse_scenarios("blocks_x = 4\n[s]\n"); }, "line 1");
}

TEST(ScenarioSpec, DefaultsAfterScenarioSectionFails) {
  expect_throw_containing([] { parse_scenarios("[s]\nblocks_x = 4\n[defaults]\n"); },
                          "line 3");
}

TEST(ScenarioSpec, ValidateRejectsBadCombinations) {
  {
    ScenarioSpec spec;  // steady + trace
    spec.load = LoadKind::kTrace;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;  // fatigue needs a trace
    spec.analysis = AnalysisKind::kFatigue;
    spec.load = LoadKind::kUniform;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.analysis = AnalysisKind::kFatigue;
    spec.load = LoadKind::kTrace;
    spec.trace.duty = 1.0;  // duty must be inside (0, 1)
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.blocks_x = 0;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.kind = ScenarioKind::kSubmodel;
    spec.location = 6;  // standard_locations has loc1..loc5
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;  // snapshots are an array-transient feature
    spec.kind = ScenarioKind::kSubmodel;
    spec.analysis = AnalysisKind::kTransient;
    spec.load = LoadKind::kTrace;
    spec.snapshot_steps = {1};
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
}

TEST(ScenarioSpec, PayloadSpecsRefuseSerialization) {
  ScenarioSpec spec;
  spec.load_field = std::make_shared<rom::BlockLoadField>(rom::BlockLoadField::uniform(-100.0));
  EXPECT_TRUE(spec.has_programmatic_payload());
  EXPECT_THROW((void)spec.to_config_text(), std::logic_error);
}

TEST(ScenarioSpec, ParseFilePrefixesDiagnosticsWithPath) {
  const auto path = std::filesystem::temp_directory_path() / "ms_sweep_bad_spec.txt";
  {
    std::ofstream out(path);
    out << "[s]\nnot_a_key = 1\n";
  }
  expect_throw_containing([&] { (void)parse_scenario_file(path.string()); },
                          "ms_sweep_bad_spec.txt");
  expect_throw_containing([&] { (void)parse_scenario_file(path.string()); }, "line 2");
  std::filesystem::remove(path);
}

TEST(ScenarioSpec, EqualityIsNaNAwareAndFieldSensitive) {
  const ScenarioSpec a = fatigue_spec();
  ScenarioSpec b = a;
  EXPECT_TRUE(a == b);  // NaN hotspot positions? here set; defaults below
  b.trace.cycles = 4;
  EXPECT_TRUE(a != b);
  const ScenarioSpec c;
  ScenarioSpec d;
  EXPECT_TRUE(c == d);  // both carry NaN delta_t / hotspot positions
  d.delta_t = -100.0;
  EXPECT_TRUE(c != d);
}

}  // namespace
}  // namespace ms::sweep
