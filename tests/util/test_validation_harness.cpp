// The validation harness itself: per-block ΔT expansion onto fine meshes,
// and the scenario-1 (array) reference-FEM comparison staying inside the
// paper's error band — including the displacement channel.

#include "util/validation_harness.hpp"

#include <gtest/gtest.h>

namespace ms::testutil {
namespace {

core::SimulationConfig harness_config() {
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  config.mesh_spec = {6, 3};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 4;
  config.local.samples_per_block = 12;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  return config;
}

TEST(PerElementDeltaT, BinsElementsByBlockCentroid) {
  const mesh::TsvGeometry geometry{15.0, 5.0, 0.5, 50.0};
  const mesh::HexMesh mesh = mesh::build_array_mesh(geometry, {4, 2}, 2, 2);
  const rom::BlockLoadField load(2, 2, {10.0, 20.0, 30.0, 40.0});
  const la::Vec dt = per_element_delta_t(mesh, load, 2, 2, geometry.pitch);
  ASSERT_EQ(dt.size(), static_cast<std::size_t>(mesh.num_elems()));
  for (la::idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 c = mesh.elem_centroid(e);
    const int bx = c.x < geometry.pitch ? 0 : 1;
    const int by = c.y < geometry.pitch ? 0 : 1;
    EXPECT_DOUBLE_EQ(dt[e], load.at(bx, by)) << "element " << e;
  }
}

TEST(PerElementDeltaT, UniformFieldExpandsToConstant) {
  const mesh::TsvGeometry geometry{15.0, 5.0, 0.5, 50.0};
  const mesh::HexMesh mesh = mesh::build_array_mesh(geometry, {4, 2}, 3, 1);
  const la::Vec dt =
      per_element_delta_t(mesh, rom::BlockLoadField::uniform(-250.0), 3, 1, geometry.pitch);
  for (double v : dt) EXPECT_DOUBLE_EQ(v, -250.0);
}

TEST(ValidationHarness, ArrayThermalWithinPaperErrorBand) {
  core::SimulationConfig config = harness_config();
  thermal::PowerMap power = thermal::PowerMap::per_block(2, 2, config.geometry.pitch, 30.0);
  power.add_gaussian_hotspot(config.geometry.pitch, config.geometry.pitch,
                             config.geometry.pitch, 300.0);
  const ValidationReport report = validate_array_thermal(config, 2, 2, power);

  ASSERT_EQ(report.rom_von_mises.size(), report.ref_von_mises.size());
  ASSERT_FALSE(report.rom_von_mises.empty());
  // (4,4,4) interpolation nodes on the 2x2 array: the uniform-reflow variant
  // of this comparison sits near 4% (tests/integration); the coupled load
  // must stay in the same band.
  EXPECT_LT(report.von_mises_error, 0.06);
  ASSERT_TRUE(report.has_displacement);
  EXPECT_LT(report.displacement_error, 0.06);
}

TEST(ValidationHarness, ArrayThermalErrorShrinksWithMoreNodes) {
  thermal::PowerMap power;
  {
    const core::SimulationConfig config = harness_config();
    power = thermal::PowerMap::per_block(2, 2, config.geometry.pitch, 40.0);
    power.add_gaussian_hotspot(1.5 * config.geometry.pitch, 0.5 * config.geometry.pitch,
                               config.geometry.pitch, 250.0);
  }
  double previous = 1e9;
  for (int nodes : {2, 4}) {
    core::SimulationConfig config = harness_config();
    config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = nodes;
    const ValidationReport report = validate_array_thermal(config, 2, 2, power);
    EXPECT_LT(report.von_mises_error, previous) << "nodes=" << nodes;
    previous = report.von_mises_error;
  }
}

}  // namespace
}  // namespace ms::testutil
