#include "util/table.hpp"

#include <gtest/gtest.h>

namespace ms::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha | 1"), std::string::npos);
  // The rule line under the header exists.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NO_THROW(table.render());
}

TEST(TextTable, OverlongRowsThrow) {
  TextTable table({"a"});
  EXPECT_THROW(table.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, CsvRendering) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.render_csv(), "a,b\n1,2\n");
}

TEST(Cells, RatioFormatting) {
  EXPECT_EQ(ratio_cell(300.0, 2.0), "150x");
  EXPECT_EQ(ratio_cell(30.0, 2.0), "15x");
  EXPECT_EQ(ratio_cell(9.0, 2.0), "4.5x");
  EXPECT_EQ(ratio_cell(1.0, 0.0), "-");
}

TEST(Cells, PercentFormatting) {
  EXPECT_EQ(percent_cell(0.0093), "0.93%");
  EXPECT_EQ(percent_cell(0.1443), "14.43%");
}

TEST(Cells, StrfFormats) { EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x"); }

}  // namespace
}  // namespace ms::util
