#include "util/memory.hpp"

#include <gtest/gtest.h>

namespace ms::util {
namespace {

class MemoryLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryLedger::instance().reset_all(); }
  void TearDown() override { MemoryLedger::instance().reset_all(); }
};

TEST_F(MemoryLedgerTest, TracksCurrentAndPeak) {
  auto& ledger = MemoryLedger::instance();
  ledger.allocate(100);
  ledger.allocate(50);
  EXPECT_EQ(ledger.current_bytes(), 150u);
  EXPECT_EQ(ledger.peak_bytes(), 150u);
  ledger.release(100);
  EXPECT_EQ(ledger.current_bytes(), 50u);
  EXPECT_EQ(ledger.peak_bytes(), 150u);
}

TEST_F(MemoryLedgerTest, ReleaseClampsAtZero) {
  auto& ledger = MemoryLedger::instance();
  ledger.allocate(10);
  ledger.release(25);
  EXPECT_EQ(ledger.current_bytes(), 0u);
}

TEST_F(MemoryLedgerTest, ResetPeakKeepsCurrent) {
  auto& ledger = MemoryLedger::instance();
  ledger.allocate(100);
  ledger.release(60);
  ledger.reset_peak();
  EXPECT_EQ(ledger.peak_bytes(), 40u);
}

TEST_F(MemoryLedgerTest, ScopedBytesRegisterAndUnregister) {
  auto& ledger = MemoryLedger::instance();
  {
    ScopedLedgerBytes bytes(1000);
    EXPECT_EQ(ledger.current_bytes(), 1000u);
    ScopedLedgerBytes moved = std::move(bytes);
    EXPECT_EQ(ledger.current_bytes(), 1000u);
    moved.resize(500);
    EXPECT_EQ(ledger.current_bytes(), 500u);
  }
  EXPECT_EQ(ledger.current_bytes(), 0u);
}

TEST(MemoryRss, ReportsPlausibleValues) {
  const std::size_t rss = current_rss_bytes();
  const std::size_t peak = peak_rss_bytes();
  EXPECT_GT(rss, 1u << 20);  // more than 1 MB resident
  EXPECT_GE(peak, rss / 2);  // peak cannot be wildly below current
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 kB");
  EXPECT_EQ(format_bytes(3'500'000), "3.5 MB");
  EXPECT_EQ(format_bytes(2'250'000'000ull), "2.25 GB");
}

}  // namespace
}  // namespace ms::util
