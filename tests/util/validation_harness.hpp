#pragma once
// Reusable reference-FEM validation harness: run a thermally coupled ROM
// scenario, then solve the brute-force fine-mesh FEM on the *identical*
// discrete model with the *identical* per-block ΔT field (expanded to one
// value per element), and compare the mid-plane stress — and, when the local
// stage sampled displacements, the mid-plane displacement — with the paper's
// normalized error metrics. The ROM's only extra error source is boundary
// interpolation, so both scenarios must land inside the paper's reported
// error band on any mesh.
//
// Header-only so every test suite can include it as "util/validation_harness.hpp".

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "chiplet/displacement_field.hpp"
#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "core/simulator.hpp"
#include "fem/solver.hpp"
#include "fem/stress.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/reconstruct.hpp"

namespace ms::testutil {

/// Expand a per-block ΔT field onto a fine mechanical mesh: every element
/// takes the ΔT of the block its centroid falls in (the mesh lives in the
/// window-local frame, blocks of size pitch x pitch from the origin).
/// Each element writes only its own entry, so the parallel fill is
/// bitwise-deterministic at any thread count.
inline la::Vec per_element_delta_t(const mesh::HexMesh& mesh, const rom::BlockLoadField& load,
                                   int blocks_x, int blocks_y, double pitch) {
  la::Vec dt(static_cast<std::size_t>(mesh.num_elems()));
  const la::idx_t ne = mesh.num_elems();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (la::idx_t e = 0; e < ne; ++e) {
    const mesh::Point3 c = mesh.elem_centroid(e);
    const int bx = std::min(static_cast<int>(c.x / pitch), blocks_x - 1);
    const int by = std::min(static_cast<int>(c.y / pitch), blocks_y - 1);
    dt[e] = load.at(bx, by);
  }
  return dt;
}

struct ValidationReport {
  std::vector<double> rom_von_mises;
  std::vector<double> ref_von_mises;
  double von_mises_error = 0.0;      ///< normalized MAE (paper Sec. 5.2)
  double displacement_error = 0.0;   ///< max-abs error / max-abs reference
  bool has_displacement = false;     ///< local stage sampled displacements
};

namespace detail {

/// Max-abs displacement mismatch between the ROM plane reconstruction and
/// the fine field probed at the same points, normalized by the reference's
/// own max-abs component.
/// Max reductions are order-independent, so the parallel probe loop gives
/// the same answer at any thread count.
inline double displacement_max_error(const std::vector<std::array<double, 3>>& rom_disp,
                                     const chiplet::DisplacementField& ref_field,
                                     const fem::PlaneGrid& plane) {
  double max_err = 0.0;
  double max_ref = 0.0;
  const std::int64_t ny = static_cast<std::int64_t>(plane.ys.size());
  const std::int64_t nx = static_cast<std::int64_t>(plane.xs.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(static) collapse(2) \
    reduction(max : max_err) reduction(max : max_ref)
#endif
  for (std::int64_t iy = 0; iy < ny; ++iy) {
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      const auto ref = ref_field({plane.xs[ix], plane.ys[iy], plane.z});
      const std::size_t idx = static_cast<std::size_t>(iy) * nx + ix;
      for (int c = 0; c < 3; ++c) {
        max_err = std::max(max_err, std::abs(rom_disp[idx][c] - ref[c]));
        max_ref = std::max(max_ref, std::abs(ref[c]));
      }
    }
  }
  return max_ref > 0.0 ? max_err / max_ref : 0.0;
}

}  // namespace detail

/// Scenario 1/3 (standalone array, power-map driven): ROM vs brute-force
/// FEM under the coupled per-block ΔT field.
inline ValidationReport validate_array_thermal(const core::SimulationConfig& config, int blocks_x,
                                               int blocks_y, const thermal::PowerMap& power) {
  core::MoreStressSimulator sim(config);
  const core::ThermalArrayResult rom = sim.simulate_array_thermal(blocks_x, blocks_y, power);

  const mesh::HexMesh fine =
      mesh::build_array_mesh(config.geometry, config.mesh_spec, blocks_x, blocks_y);
  const la::Vec dt =
      per_element_delta_t(fine, rom.load, blocks_x, blocks_y, config.geometry.pitch);
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(fine.top_bottom_nodes());
  fem::FemSolveOptions options;
  options.method = "direct";
  const la::Vec u = fem::solve_thermal_stress(fine, config.materials, dt, bc, options);
  const fem::PlaneGrid plane =
      fem::make_block_plane_grid(config.geometry.pitch, blocks_x, blocks_y,
                                 config.local.samples_per_block, 0.5 * config.geometry.height);

  ValidationReport report;
  report.rom_von_mises = rom.von_mises;
  report.ref_von_mises =
      fem::to_von_mises(fem::sample_plane_stress(fine, config.materials, u, dt, plane));
  report.von_mises_error = fem::normalized_mae(report.ref_von_mises, report.rom_von_mises);

  if (config.local.sample_displacements) {
    const rom::BlockGrid grid(blocks_x, blocks_y, config.local.nodes_x, config.local.nodes_y,
                              config.local.nodes_z, config.geometry.pitch,
                              config.geometry.height);
    const auto rom_disp = rom::reconstruct_plane_displacement(
        grid, sim.tsv_model(), nullptr, {}, rom.solution, rom.load, rom::BlockRange::all(grid));
    const chiplet::DisplacementField ref_field(fine, u);
    report.displacement_error = detail::displacement_max_error(rom_disp, ref_field, plane);
    report.has_displacement = true;
  }
  return report;
}

/// Scenario 3, time domain: validate a transient run's envelope stress and
/// every requested snapshot against brute-force FEM under the identical
/// per-block ΔT fields. The reference side assembles the fine system once,
/// factors it once, and solves all cases as one multi-RHS panel
/// (fem::solve_thermal_stress_multi), mirroring how the simulator batches
/// the ROM-side snapshot solves against one factorization.
struct TransientValidationReport {
  double envelope_von_mises_error = 0.0;
  std::vector<double> snapshot_von_mises_errors;  ///< one per snapshot step
};

inline TransientValidationReport validate_array_thermal_transient(
    const core::SimulationConfig& config, int blocks_x, int blocks_y,
    const thermal::PowerTrace& trace, const std::vector<int>& snapshot_steps) {
  core::MoreStressSimulator sim(config);
  const core::ThermalTransientArrayResult rom =
      sim.simulate_array_thermal_transient(blocks_x, blocks_y, trace, snapshot_steps);

  const mesh::HexMesh fine =
      mesh::build_array_mesh(config.geometry, config.mesh_spec, blocks_x, blocks_y);
  std::vector<la::Vec> dt_cases;
  dt_cases.reserve(snapshot_steps.size() + 1);
  dt_cases.push_back(
      per_element_delta_t(fine, rom.envelope_load, blocks_x, blocks_y, config.geometry.pitch));
  for (int step : snapshot_steps) {
    const rom::BlockLoadField load(blocks_x, blocks_y,
                                   la::Vec(rom.transient.block_delta_t[step]));
    dt_cases.push_back(per_element_delta_t(fine, load, blocks_x, blocks_y,
                                           config.geometry.pitch));
  }
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(fine.top_bottom_nodes());
  fem::FemSolveOptions options;
  options.method = "direct";
  const std::vector<la::Vec> solutions =
      fem::solve_thermal_stress_multi(fine, config.materials, dt_cases, bc, options);

  const fem::PlaneGrid plane =
      fem::make_block_plane_grid(config.geometry.pitch, blocks_x, blocks_y,
                                 config.local.samples_per_block, 0.5 * config.geometry.height);
  const auto von_mises_of = [&](const la::Vec& u, const la::Vec& dt) {
    return fem::to_von_mises(fem::sample_plane_stress(fine, config.materials, u, dt, plane));
  };

  TransientValidationReport report;
  report.envelope_von_mises_error =
      fem::normalized_mae(von_mises_of(solutions[0], dt_cases[0]), rom.von_mises);
  report.snapshot_von_mises_errors.reserve(snapshot_steps.size());
  for (std::size_t c = 0; c < snapshot_steps.size(); ++c) {
    report.snapshot_von_mises_errors.push_back(fem::normalized_mae(
        von_mises_of(solutions[c + 1], dt_cases[c + 1]), rom.snapshots[c].von_mises));
  }
  return report;
}

/// Scenario 2 (package sub-model, power-map driven): ROM vs brute-force FEM
/// of the padded window under the same coarse-displacement boundary data and
/// the same per-block ΔT field. Fields cover the inner TSV region only.
inline ValidationReport validate_submodel_thermal(const core::SimulationConfig& config,
                                                  const chiplet::PackageModel& package,
                                                  const chiplet::SubmodelPlacement& placement,
                                                  int tsv_blocks_x, int tsv_blocks_y,
                                                  int dummy_rings,
                                                  const thermal::PowerMap& power) {
  core::MoreStressSimulator sim(config);
  const core::ThermalSubmodelResult rom = sim.simulate_submodel_thermal(
      tsv_blocks_x, tsv_blocks_y, dummy_rings, package, placement, power);

  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  const mesh::HexMesh fine = mesh::build_array_mesh(
      config.geometry, config.mesh_spec, bx, by, mesh::padded_tsv_mask(bx, by, dummy_rings));
  const fem::DirichletBc bc = chiplet::fine_submodel_bc(fine, package, placement);
  const la::Vec dt = per_element_delta_t(fine, rom.load, bx, by, config.geometry.pitch);
  fem::FemSolveOptions options;
  options.method = "direct";
  const la::Vec u = fem::solve_thermal_stress(fine, config.materials, dt, bc, options);

  // Sample only the inner TSV region (what the ROM reports), shifted past
  // the dummy rings in the window-local frame.
  fem::PlaneGrid plane =
      fem::make_block_plane_grid(config.geometry.pitch, tsv_blocks_x, tsv_blocks_y,
                                 config.local.samples_per_block, 0.5 * config.geometry.height);
  for (double& x : plane.xs) x += dummy_rings * config.geometry.pitch;
  for (double& y : plane.ys) y += dummy_rings * config.geometry.pitch;

  ValidationReport report;
  report.rom_von_mises = rom.von_mises;
  report.ref_von_mises =
      fem::to_von_mises(fem::sample_plane_stress(fine, config.materials, u, dt, plane));
  report.von_mises_error = fem::normalized_mae(report.ref_von_mises, report.rom_von_mises);

  if (config.local.sample_displacements) {
    const rom::BlockGrid grid(bx, by, config.local.nodes_x, config.local.nodes_y,
                              config.local.nodes_z, config.geometry.pitch,
                              config.geometry.height);
    const rom::BlockMask mask = mesh::padded_tsv_mask(bx, by, dummy_rings);
    rom::BlockRange range;
    range.bx0 = dummy_rings;
    range.bx1 = dummy_rings + tsv_blocks_x;
    range.by0 = dummy_rings;
    range.by1 = dummy_rings + tsv_blocks_y;
    const auto rom_disp = rom::reconstruct_plane_displacement(
        grid, sim.tsv_model(), dummy_rings > 0 ? &sim.dummy_model() : nullptr, mask, rom.solution,
        rom.load, range);
    const chiplet::DisplacementField ref_field(fine, u);
    report.displacement_error = detail::displacement_max_error(rom_disp, ref_field, plane);
    report.has_displacement = true;
  }
  return report;
}

}  // namespace ms::testutil
