#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

namespace ms::util {
namespace {

/// Redirects stderr to a temp file for the duration of one scope so tests
/// can assert on what log_message actually wrote.
class StderrCapture {
 public:
  StderrCapture() {
    path_ = ::testing::TempDir() + "ms_log_capture.txt";
    std::fflush(stderr);
    saved_fd_ = dup(fileno(stderr));
    FILE* file = std::freopen(path_.c_str(), "w", stderr);
    EXPECT_NE(file, nullptr);
  }
  ~StderrCapture() {
    restore();
    std::remove(path_.c_str());
  }
  std::string take() {
    restore();
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

 private:
  void restore() {
    if (saved_fd_ < 0) return;
    std::fflush(stderr);
    dup2(saved_fd_, fileno(stderr));
    close(saved_fd_);
    saved_fd_ = -1;
  }
  std::string path_;
  int saved_fd_ = -1;
};

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  set_log_level(original);
}

TEST(Log, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
}

TEST(Log, ParseUnknownFallsBackToInfo) {
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::Info);
  EXPECT_EQ(parse_log_level(""), LogLevel::Info);
}

TEST(Log, ParseReportsValidityThroughOkOutParam) {
  bool ok = false;
  EXPECT_EQ(parse_log_level("debug", &ok), LogLevel::Debug);
  EXPECT_TRUE(ok);
  ok = true;
  EXPECT_EQ(parse_log_level("verbose", &ok), LogLevel::Info);
  EXPECT_FALSE(ok);
}

TEST(Log, EnvOverrideAppliesValidLevelsOnly) {
  const LogLevel original = log_level();

  ASSERT_EQ(unsetenv("MS_LOG_LEVEL"), 0);
  EXPECT_FALSE(apply_env_log_level());
  EXPECT_EQ(log_level(), original);

  ASSERT_EQ(setenv("MS_LOG_LEVEL", "error", 1), 0);
  EXPECT_TRUE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::Error);

  set_log_level(LogLevel::Warn);
  ASSERT_EQ(setenv("MS_LOG_LEVEL", "not-a-level", 1), 0);
  EXPECT_FALSE(apply_env_log_level());  // warns, leaves the level untouched
  EXPECT_EQ(log_level(), LogLevel::Warn);

  ASSERT_EQ(unsetenv("MS_LOG_LEVEL"), 0);
  set_log_level(original);
}

TEST(Log, SuppressedMessageDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Off);
  MS_LOG_ERROR("suppressed %d", 42);
  set_log_level(original);
}

TEST(Log, MessageCarriesLevelTagFileAndBody) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Info);
  std::string output;
  {
    StderrCapture capture;
    MS_LOG_INFO("assembled %d dofs", 1234);
    output = capture.take();
  }
  set_log_level(original);
  EXPECT_NE(output.find("[INFO test_log.cpp:"), std::string::npos) << output;
  EXPECT_NE(output.find("assembled 1234 dofs"), std::string::npos) << output;
  EXPECT_EQ(output.back(), '\n');
}

TEST(Log, OversizedMessagesTruncateToOneMarkedLine) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Info);
  const std::string huge(4096, 'y');
  std::string output;
  {
    StderrCapture capture;
    MS_LOG_INFO("%s", huge.c_str());
    output = capture.take();
  }
  set_log_level(original);
  ASSERT_FALSE(output.empty());
  EXPECT_EQ(output.size(), 1023u);  // formatting buffer bound, incl. newline
  // Exactly one line, ending in the truncation marker.
  EXPECT_EQ(output.find('\n'), output.size() - 1);
  EXPECT_EQ(output.substr(output.size() - 4), "...\n");
}

TEST(Log, ConcurrentWritersNeverInterleaveMidLine) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Info);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::string output;
  {
    StderrCapture capture;
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i) {
          MS_LOG_INFO("writer=%d iteration=%d tail", t, i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    output = capture.take();
  }
  set_log_level(original);

  // Each message lands as one atomic write: every captured line is complete
  // (prefix + body + "tail"), and all kThreads * kPerThread lines arrive.
  std::stringstream stream(output);
  std::string line;
  int lines = 0;
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_EQ(line.find("[INFO"), 0u) << line;
    EXPECT_NE(line.find("writer="), std::string::npos) << line;
    EXPECT_EQ(line.substr(line.size() - 4), "tail") << line;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

}  // namespace
}  // namespace ms::util
