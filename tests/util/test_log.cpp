#include "util/log.hpp"

#include <gtest/gtest.h>

namespace ms::util {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  set_log_level(original);
}

TEST(Log, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
}

TEST(Log, ParseUnknownFallsBackToInfo) {
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::Info);
  EXPECT_EQ(parse_log_level(""), LogLevel::Info);
}

TEST(Log, SuppressedMessageDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Off);
  MS_LOG_ERROR("suppressed %d", 42);
  set_log_level(original);
}

}  // namespace
}  // namespace ms::util
