#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ms::util {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  set_log_level(original);
}

TEST(Log, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
}

TEST(Log, ParseUnknownFallsBackToInfo) {
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::Info);
  EXPECT_EQ(parse_log_level(""), LogLevel::Info);
}

TEST(Log, ParseReportsValidityThroughOkOutParam) {
  bool ok = false;
  EXPECT_EQ(parse_log_level("debug", &ok), LogLevel::Debug);
  EXPECT_TRUE(ok);
  ok = true;
  EXPECT_EQ(parse_log_level("verbose", &ok), LogLevel::Info);
  EXPECT_FALSE(ok);
}

TEST(Log, EnvOverrideAppliesValidLevelsOnly) {
  const LogLevel original = log_level();

  ASSERT_EQ(unsetenv("MS_LOG_LEVEL"), 0);
  EXPECT_FALSE(apply_env_log_level());
  EXPECT_EQ(log_level(), original);

  ASSERT_EQ(setenv("MS_LOG_LEVEL", "error", 1), 0);
  EXPECT_TRUE(apply_env_log_level());
  EXPECT_EQ(log_level(), LogLevel::Error);

  set_log_level(LogLevel::Warn);
  ASSERT_EQ(setenv("MS_LOG_LEVEL", "not-a-level", 1), 0);
  EXPECT_FALSE(apply_env_log_level());  // warns, leaves the level untouched
  EXPECT_EQ(log_level(), LogLevel::Warn);

  ASSERT_EQ(unsetenv("MS_LOG_LEVEL"), 0);
  set_log_level(original);
}

TEST(Log, SuppressedMessageDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Off);
  MS_LOG_ERROR("suppressed %d", 42);
  set_log_level(original);
}

}  // namespace
}  // namespace ms::util
