#include "util/field_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace ms::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PlaneField, BlockGridGeometryMatchesSampler) {
  // Must match fem::make_block_plane_grid cell centres: (m + 0.5)/s * pitch.
  const PlaneField f = PlaneField::block_grid(15.0, 3, 2, 10, 25.0);
  EXPECT_EQ(f.width, 30u);
  EXPECT_EQ(f.height, 20u);
  EXPECT_DOUBLE_EQ(f.x_of(0), 0.75);
  EXPECT_DOUBLE_EQ(f.x_of(1), 2.25);
  EXPECT_DOUBLE_EQ(f.y_of(19), (19 + 0.5) * 1.5);
  EXPECT_DOUBLE_EQ(f.z, 25.0);
  EXPECT_EQ(f.size(), 600u);
}

TEST(PlaneField, BlockGridRejectsBadInput) {
  EXPECT_THROW(PlaneField::block_grid(0.0, 1, 1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(PlaneField::block_grid(1.0, 0, 1, 1, 0.0), std::invalid_argument);
}

TEST(FieldIo, CsvRoundTripValues) {
  const PlaneField f = PlaneField::block_grid(2.0, 1, 1, 2, 1.0);
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  const std::string path = temp_path("ms_field.csv");
  write_csv(path, f, values, "vm");
  const std::string text = read_file(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("x,y,vm"), std::string::npos);
  EXPECT_NE(text.find("0.5,0.5,1"), std::string::npos);
  EXPECT_NE(text.find("1.5,1.5,4"), std::string::npos);
}

TEST(FieldIo, CsvMultiColumn) {
  const PlaneField f = PlaneField::block_grid(2.0, 1, 1, 1, 0.0);
  const std::vector<double> a{7.0};
  const std::vector<double> b{9.0};
  const std::string path = temp_path("ms_field_multi.csv");
  write_csv_multi(path, f, {{"rom", &a}, {"ref", &b}});
  const std::string text = read_file(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("x,y,rom,ref"), std::string::npos);
  EXPECT_NE(text.find("1,1,7,9"), std::string::npos);
}

TEST(FieldIo, CsvRejectsSizeMismatch) {
  const PlaneField f = PlaneField::block_grid(1.0, 1, 1, 2, 0.0);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(write_csv(temp_path("ms_bad.csv"), f, wrong), std::runtime_error);
}

TEST(FieldIo, VtkHeaderAndPayload) {
  const PlaneField f = PlaneField::block_grid(4.0, 1, 1, 2, 25.0);
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  const std::string path = temp_path("ms_field.vtk");
  write_vtk(path, f, values, "stress");
  const std::string text = read_file(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(text.find("DIMENSIONS 2 2 1"), std::string::npos);
  EXPECT_NE(text.find("SCALARS stress double 1"), std::string::npos);
  EXPECT_NE(text.find("ORIGIN 1 1 25"), std::string::npos);
}

TEST(FieldIo, WriteToUnwritablePathThrows) {
  const PlaneField f = PlaneField::block_grid(1.0, 1, 1, 1, 0.0);
  const std::vector<double> values{1.0};
  EXPECT_THROW(write_csv("/nonexistent_dir/x.csv", f, values), std::runtime_error);
}

TEST(FieldStats, MinMaxMeanArgmax) {
  const FieldStats stats = field_stats({3.0, -1.0, 7.0, 5.0});
  EXPECT_DOUBLE_EQ(stats.min, -1.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_EQ(stats.argmax, 2u);
  EXPECT_THROW(field_stats({}), std::invalid_argument);
}

}  // namespace
}  // namespace ms::util
