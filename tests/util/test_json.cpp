// The minimal JSON writer behind the BENCH_*.json artifacts.

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace ms::util {
namespace {

TEST(JsonObject, RendersFieldsInInsertionOrder) {
  JsonObject obj;
  obj.set("name", "array").set("edge", 16).set("seconds", 0.25).set("converged", true);
  EXPECT_EQ(obj.render(), "{\"name\": \"array\", \"edge\": 16, \"seconds\": 0.25, "
                          "\"converged\": true}");
}

TEST(JsonObject, EscapesStringsAndHandlesNonFinite) {
  JsonObject obj;
  obj.set("label", "a\"b\\c\nd").set("bad", std::nan(""));
  EXPECT_EQ(obj.render(), "{\"label\": \"a\\\"b\\\\c\\nd\", \"bad\": null}");
}

TEST(JsonObject, NumbersKeepPrecision) {
  JsonObject obj;
  obj.set("tiny", 1.25e-9).set("big", static_cast<std::int64_t>(1234567890123LL));
  EXPECT_EQ(obj.render(), "{\"tiny\": 1.25e-09, \"big\": 1234567890123}");
}

TEST(WriteBenchJson, ProducesTheStandardShape) {
  const std::string path = ::testing::TempDir() + "bench_json_test.json";
  std::vector<JsonObject> records(2);
  records[0].set("scenario", "array").set("edge", 8);
  records[1].set("scenario", "submodel").set("edge", 5);
  write_bench_json(path, "thermal_coupling", records);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"bench\": \"thermal_coupling\""), std::string::npos);
  EXPECT_NE(text.find("{\"scenario\": \"array\", \"edge\": 8},"), std::string::npos);
  EXPECT_NE(text.find("{\"scenario\": \"submodel\", \"edge\": 5}\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteBenchJson, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_bench_json("/nonexistent-dir/x.json", "b", {}), std::runtime_error);
}

TEST(ParseJson, ScalarsAndNesting) {
  const JsonValue doc = parse_json(
      R"({"n": null, "t": true, "f": false, "x": -1.5e2, "s": "hi",
          "arr": [1, 2, 3], "obj": {"inner": "value"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_FALSE(doc.find("f")->boolean);
  EXPECT_DOUBLE_EQ(doc.find("x")->number, -150.0);
  EXPECT_EQ(doc.find("s")->string, "hi");
  ASSERT_TRUE(doc.find("arr")->is_array());
  ASSERT_EQ(doc.find("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("arr")->array[1].number, 2.0);
  ASSERT_TRUE(doc.find("obj")->is_object());
  EXPECT_EQ(doc.find("obj")->find("inner")->string, "value");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ParseJson, StringEscapes) {
  // \u00e9 must decode to two-byte UTF-8 (0xc3 0xa9).
  const JsonValue doc = parse_json(R"({"s": "a\"b\\c\nd\tA\u00e9"})");
  EXPECT_EQ(doc.find("s")->string, "a\"b\\c\nd\tA\xc3\xa9");
}

TEST(ParseJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
}

TEST(ParseJson, RoundTripsJsonObjectOutput) {
  JsonObject obj;
  obj.set("name", "array").set("edge", 16).set("seconds", 0.25).set("converged", true);
  const JsonValue doc = parse_json(obj.render());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->string, "array");
  EXPECT_DOUBLE_EQ(doc.find("edge")->number, 16.0);
  EXPECT_DOUBLE_EQ(doc.find("seconds")->number, 0.25);
  EXPECT_TRUE(doc.find("converged")->boolean);
}

}  // namespace
}  // namespace ms::util
