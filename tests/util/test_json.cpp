// The minimal JSON writer behind the BENCH_*.json artifacts.

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace ms::util {
namespace {

TEST(JsonObject, RendersFieldsInInsertionOrder) {
  JsonObject obj;
  obj.set("name", "array").set("edge", 16).set("seconds", 0.25).set("converged", true);
  EXPECT_EQ(obj.render(), "{\"name\": \"array\", \"edge\": 16, \"seconds\": 0.25, "
                          "\"converged\": true}");
}

TEST(JsonObject, EscapesStringsAndHandlesNonFinite) {
  JsonObject obj;
  obj.set("label", "a\"b\\c\nd").set("bad", std::nan(""));
  EXPECT_EQ(obj.render(), "{\"label\": \"a\\\"b\\\\c\\nd\", \"bad\": null}");
}

TEST(JsonObject, NumbersKeepPrecision) {
  JsonObject obj;
  obj.set("tiny", 1.25e-9).set("big", static_cast<std::int64_t>(1234567890123LL));
  EXPECT_EQ(obj.render(), "{\"tiny\": 1.25e-09, \"big\": 1234567890123}");
}

TEST(WriteBenchJson, ProducesTheStandardShape) {
  const std::string path = ::testing::TempDir() + "bench_json_test.json";
  std::vector<JsonObject> records(2);
  records[0].set("scenario", "array").set("edge", 8);
  records[1].set("scenario", "submodel").set("edge", 5);
  write_bench_json(path, "thermal_coupling", records);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"bench\": \"thermal_coupling\""), std::string::npos);
  EXPECT_NE(text.find("{\"scenario\": \"array\", \"edge\": 8},"), std::string::npos);
  EXPECT_NE(text.find("{\"scenario\": \"submodel\", \"edge\": 5}\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteBenchJson, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_bench_json("/nonexistent-dir/x.json", "b", {}), std::runtime_error);
}

}  // namespace
}  // namespace ms::util
