#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace ms::util {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_flag("full", "run everything");
  cli.add_int("size", 10, "array size");
  cli.add_double("tol", 1e-6, "tolerance");
  cli.add_string("method", "cg", "solver");
  return cli;
}

TEST(Cli, DefaultsApply) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse(std::vector<std::string>{}));
  EXPECT_FALSE(cli.flag("full"));
  EXPECT_EQ(cli.get_int("size"), 10);
  EXPECT_DOUBLE_EQ(cli.get_double("tol"), 1e-6);
  EXPECT_EQ(cli.get_string("method"), "cg");
}

TEST(Cli, ParsesSeparateAndInlineValues) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({"--full", "--size", "25", "--tol=1e-3", "--method=gmres"}));
  EXPECT_TRUE(cli.flag("full"));
  EXPECT_EQ(cli.get_int("size"), 25);
  EXPECT_DOUBLE_EQ(cli.get_double("tol"), 1e-3);
  EXPECT_EQ(cli.get_string("method"), "gmres");
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"--bogus"}));
  EXPECT_NE(cli.error().find("unknown option"), std::string::npos);
}

TEST(Cli, RejectsMissingValue) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"--size"}));
}

TEST(Cli, RejectsBadInteger) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"--size", "abc"}));
}

TEST(Cli, RejectsValueOnFlag) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"--full=yes"}));
}

TEST(Cli, RejectsPositionalArguments) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"positional"}));
}

TEST(Cli, UsageMentionsEveryOption) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage();
  for (const char* name : {"--full", "--size", "--tol", "--method", "--help"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace ms::util
