#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ms::util {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.009);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.milliseconds(), timer.seconds() * 1e3, 1.0);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.009);
}

TEST(PhaseTimer, AccumulatesByName) {
  PhaseTimer phases;
  phases.add("assemble", 1.0);
  phases.add("solve", 2.0);
  phases.add("assemble", 0.5);
  EXPECT_DOUBLE_EQ(phases.total("assemble"), 1.5);
  EXPECT_DOUBLE_EQ(phases.total("solve"), 2.0);
  EXPECT_DOUBLE_EQ(phases.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(phases.grand_total(), 3.5);
}

TEST(PhaseTimer, SummaryMentionsAllPhases) {
  PhaseTimer phases;
  phases.add("a", 1.0);
  phases.add("b", 2.0);
  const std::string s = phases.summary();
  EXPECT_NE(s.find("a="), std::string::npos);
  EXPECT_NE(s.find("b="), std::string::npos);
}

TEST(PhaseTimer, SummaryKeepsInsertionOrder) {
  PhaseTimer phases;
  phases.add("zeta", 1.0);
  phases.add("alpha", 2.0);
  phases.add("zeta", 0.25);  // accumulation must not move the phase
  const std::string s = phases.summary();
  EXPECT_LT(s.find("zeta="), s.find("alpha="));
}

TEST(PhaseTimer, ConcurrentAddsAccumulateExactly) {
  PhaseTimer phases;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&phases, t] {
      for (int i = 0; i < kPerThread; ++i) {
        phases.add("shared", 0.001);
        phases.add("own" + std::to_string(t), 0.002);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(phases.total("shared"), kThreads * kPerThread * 0.001, 1e-9);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NEAR(phases.total("own" + std::to_string(t)), kPerThread * 0.002, 1e-9);
  }
  EXPECT_NEAR(phases.grand_total(), kThreads * kPerThread * 0.003, 1e-9);
}

TEST(FormatSeconds, PicksSensibleUnits) {
  EXPECT_EQ(format_seconds(0.25), "250 ms");
  EXPECT_EQ(format_seconds(12.34), "12.3 s");
  EXPECT_EQ(format_seconds(125.0), "2m05.0s");
}

}  // namespace
}  // namespace ms::util
