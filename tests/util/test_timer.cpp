#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ms::util {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.009);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.milliseconds(), timer.seconds() * 1e3, 1.0);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.009);
}

TEST(PhaseTimer, AccumulatesByName) {
  PhaseTimer phases;
  phases.add("assemble", 1.0);
  phases.add("solve", 2.0);
  phases.add("assemble", 0.5);
  EXPECT_DOUBLE_EQ(phases.total("assemble"), 1.5);
  EXPECT_DOUBLE_EQ(phases.total("solve"), 2.0);
  EXPECT_DOUBLE_EQ(phases.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(phases.grand_total(), 3.5);
}

TEST(PhaseTimer, SummaryMentionsAllPhases) {
  PhaseTimer phases;
  phases.add("a", 1.0);
  phases.add("b", 2.0);
  const std::string s = phases.summary();
  EXPECT_NE(s.find("a="), std::string::npos);
  EXPECT_NE(s.find("b="), std::string::npos);
}

TEST(FormatSeconds, PicksSensibleUnits) {
  EXPECT_EQ(format_seconds(0.25), "250 ms");
  EXPECT_EQ(format_seconds(12.34), "12.3 s");
  EXPECT_EQ(format_seconds(125.0), "2m05.0s");
}

}  // namespace
}  // namespace ms::util
